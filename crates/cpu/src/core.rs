//! The out-of-order core pipeline.
//!
//! One [`Core`] models the Table 1 processor: 8-wide fetch/issue/commit, a
//! 192-entry ROB, 62-entry load queue, 32-entry store queue, a write
//! buffer, an LTAGE-class branch predictor, and a private L1D with MSHRs.
//! It implements TSO (loads squashed when their line is invalidated or
//! evicted before retirement, with the oldest load exempt — the aggressive
//! implementation of Section 2, with the conservative variant as a
//! config knob), the four squash sources of the Comprehensive threat
//! model, the Fence/DOM/STT defense schemes plus an InvisiSpec-class
//! invisible-speculation extension, and both Pinned Loads designs.
//!
//! A core communicates with the memory system exclusively through
//! coherence messages: the machine delivers inbound messages via
//! [`Core::handle_msg`] and drains [`Core::drain_outbox`] into the NoC.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

use pl_base::verify::{VP_ALIAS, VP_CTRL, VP_EXCEPTION};
use pl_base::{
    Addr, CheckEvent, CheckSink, CoreId, CoreSnapshot, Cycle, Dec, Enc, HistId, InvalidateCause,
    LineAddr, LineMode, MachineConfig, Mutation, PinMode, SeqNum, StatId, Stats,
};
use pl_isa::{Inst, Operand, Pc, Program, Reg};
use pl_mem::{
    home_slice, Cache, DataGrant, Memory, Mesi, Msg, MshrFile, NodeId, WbState, WriteBuffer,
};
use pl_predictor::{BranchPredictor, Checkpoint, Ras};
use pl_secure::scheme::LoadContext;
use pl_secure::{IssuePolicy, PinGovernor, PinState, TaintTracker, VpMask, VpStatus};
use pl_trace::{EventKind, TraceSource, Tracer};

use crate::dyninst::{DynInst, LqEntry, PredInfo, SqEntry, SrcList, Stage};

/// Delay before retrying a nacked coherence request.
const NACK_RETRY_DELAY: u64 = 5;
/// Delay before retrying a write that was deferred by a pinned sharer.
const DEFER_RETRY_DELAY: u64 = 12;
/// Delay before retrying an L1 install whose set was fully pinned.
const INSTALL_RETRY_DELAY: u64 = 6;
/// Fetch-buffer capacity in instructions.
const FETCH_BUF_CAP: usize = 16;
/// How often the core samples ROB/LQ/write-buffer occupancy. Public so
/// the machine's idle-cycle fast-forward can replay the samples a skipped
/// window would have taken.
pub const OCC_SAMPLE_PERIOD: u64 = 32;

#[derive(Debug, Clone, PartialEq)]
struct Fetched {
    pc: Pc,
    inst: Inst,
    pred: Option<PredInfo>,
}

/// What to do once a denied L1 install finally succeeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InstallAction {
    /// Complete the read miss: wake the MSHR waiters.
    ReadFill,
    /// Merge the write-buffer head and finish the write transaction.
    WriteMerge { needs_unblock: bool },
    /// Finish the atomic at the ROB head.
    AtomicFinish { needs_unblock: bool },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingInstall {
    line: LineAddr,
    state: Mesi,
    action: InstallAction,
    retry_at: Cycle,
}

/// In-flight `GetX` transaction for the atomic at the ROB head.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct AtomicTxn {
    active: bool,
    line: LineAddr,
    use_star: bool,
    acks_pending: usize,
    saw_defer: bool,
    have_data: bool,
    needs_unblock: bool,
    waiting_retry: bool,
    retry_at: Cycle,
}

/// Per-cycle aggregates over the ROB used to evaluate VP conditions in
/// O(1) per load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Aggregates {
    oldest_unresolved_ctrl: Option<SeqNum>,
    oldest_unknown_store_addr: Option<SeqNum>,
    oldest_unknown_mem_addr: Option<SeqNum>,
    oldest_active_fence: Option<SeqNum>,
}

/// Pre-interned [`StatId`]/[`HistId`] handles for every statistic the
/// per-cycle pipeline touches, resolved once at construction so the hot
/// path never performs a string lookup. The string API remains available
/// as the cold-path shim for tests, exporters, and one-off events.
#[derive(Debug, Clone, Copy)]
struct CoreStatIds {
    cycles: StatId,
    retired: StatId,
    atomics: StatId,
    squashes: StatId,
    squashed_insts: StatId,
    wb_writes_retried: StatId,
    wb_merges: StatId,
    l1_invs_deferred: StatId,
    l1_back_invs_deferred: StatId,
    l1_nacks: StatId,
    l1_evictions: StatId,
    l1_evictions_denied: StatId,
    l1_hits: StatId,
    l1_misses: StatId,
    l1_prefetches: StatId,
    loads_performed: StatId,
    loads_forwarded: StatId,
    loads_invisible: StatId,
    loads_validated: StatId,
    squash_branch: StatId,
    squash_alias: StatId,
    squash_validation: StatId,
    squash_mcv_inv: StatId,
    squash_mcv_evict: StatId,
    stall_wb_full: StatId,
    stall_validation: StatId,
    stall_vp: StatId,
    stall_dom_miss: StatId,
    stall_taint: StatId,
    stall_store_data: StatId,
    stall_mshr_full: StatId,
    stall_rob_full: StatId,
    stall_lq_full: StatId,
    stall_sq_full: StatId,
    pin_ep_denied: StatId,
    occ_rob: HistId,
    occ_lq: HistId,
    occ_wb: HistId,
    rob_commit_latency: HistId,
}

impl CoreStatIds {
    fn intern(stats: &mut Stats) -> CoreStatIds {
        CoreStatIds {
            cycles: stats.counter_id("cycles"),
            retired: stats.counter_id("retired"),
            atomics: stats.counter_id("atomics"),
            squashes: stats.counter_id("squashes"),
            squashed_insts: stats.counter_id("squashed_insts"),
            wb_writes_retried: stats.counter_id("wb.writes_retried"),
            wb_merges: stats.counter_id("wb.merges"),
            l1_invs_deferred: stats.counter_id("l1.invs_deferred"),
            l1_back_invs_deferred: stats.counter_id("l1.back_invs_deferred"),
            l1_nacks: stats.counter_id("l1.nacks"),
            l1_evictions: stats.counter_id("l1.evictions"),
            l1_evictions_denied: stats.counter_id("l1.evictions_denied"),
            l1_hits: stats.counter_id("l1.hits"),
            l1_misses: stats.counter_id("l1.misses"),
            l1_prefetches: stats.counter_id("l1.prefetches"),
            loads_performed: stats.counter_id("loads.performed"),
            loads_forwarded: stats.counter_id("loads.forwarded"),
            loads_invisible: stats.counter_id("loads.invisible"),
            loads_validated: stats.counter_id("loads.validated"),
            squash_branch: stats.counter_id("squash.branch"),
            squash_alias: stats.counter_id("squash.alias"),
            squash_validation: stats.counter_id("squash.validation"),
            squash_mcv_inv: stats.counter_id("squash.mcv_inv"),
            squash_mcv_evict: stats.counter_id("squash.mcv_evict"),
            stall_wb_full: stats.counter_id("stall.wb_full"),
            stall_validation: stats.counter_id("stall.validation"),
            stall_vp: stats.counter_id("stall.vp"),
            stall_dom_miss: stats.counter_id("stall.dom_miss"),
            stall_taint: stats.counter_id("stall.taint"),
            stall_store_data: stats.counter_id("stall.store_data"),
            stall_mshr_full: stats.counter_id("stall.mshr_full"),
            stall_rob_full: stats.counter_id("stall.rob_full"),
            stall_lq_full: stats.counter_id("stall.lq_full"),
            stall_sq_full: stats.counter_id("stall.sq_full"),
            pin_ep_denied: stats.counter_id("pin.ep_denied"),
            occ_rob: stats.hist_id("occ.rob"),
            occ_lq: stats.hist_id("occ.lq"),
            occ_wb: stats.hist_id("occ.wb"),
            rob_commit_latency: stats.hist_id("rob.commit_latency"),
        }
    }
}

/// One simulated out-of-order core with its private L1.
#[derive(Debug, Clone)]
pub struct Core {
    id: CoreId,
    cfg: MachineConfig,
    program: Arc<Program>,
    policy: IssuePolicy,
    vp_mask: VpMask,

    bp: BranchPredictor,
    fetch_pc: Pc,
    fetch_halted: bool,
    fetch_stalled_until: Cycle,
    fetch_buf: VecDeque<Fetched>,

    rob: VecDeque<DynInst>,
    next_seq: SeqNum,
    rename: [Option<SeqNum>; pl_isa::inst::NUM_REGS],
    regfile: [u64; pl_isa::inst::NUM_REGS],

    lq: Vec<LqEntry>,
    sq: Vec<SqEntry>,
    wb: WriteBuffer,
    wb_needs_unblock: bool,

    l1: Cache<Mesi>,
    mshrs: MshrFile,
    pending_installs: Vec<PendingInstall>,
    read_retries: Vec<(Cycle, LineAddr)>,

    governor: PinGovernor,
    taint: TaintTracker,
    atomic: AtomicTxn,

    arch_call_stack: Vec<Pc>,
    /// VP-condition aggregates, recomputed once per cycle.
    aggr: Aggregates,
    outbox: Vec<(NodeId, Msg)>,
    /// Pipeline event tracer; disabled (zero-cost) unless
    /// `cfg.trace.enabled` is set.
    tracer: Tracer,
    /// Invariant-check event sink; disabled (zero-cost) unless
    /// `cfg.verify.enabled` is set.
    check: CheckSink,
    /// Armed single-shot protocol mutation (checker regression tests).
    mutation: Mutation,
    mutation_armed: bool,
    stats: Stats,
    ids: CoreStatIds,
    halted: bool,
    retired: u64,

    /// Reusable per-tick scratch buffers: drained and refilled each cycle
    /// so the steady-state tick allocates nothing.
    scratch_installs: Vec<PendingInstall>,
    scratch_lines: Vec<LineAddr>,
    scratch_seqs: Vec<SeqNum>,
    scratch_due: Vec<(Cycle, SeqNum)>,

    /// Pending `Executing` completions as a `(done_at, seq)` min-heap,
    /// pushed on every transition into `Executing`. May hold stale
    /// entries (squashed, or re-issued after a squash reused the seq);
    /// `complete_executing` drops anything that no longer matches a
    /// live `Executing { done_at }` entry exactly.
    exec_heap: BinaryHeap<Reverse<(Cycle, SeqNum)>>,
    /// Seq-ascending indices over the ROB backing O(1) [`Core::aggregates`]:
    /// every control / fence / memory / store instruction currently in
    /// flight, minus a lazily-dropped resolved prefix. Pushed at dispatch,
    /// back-purged on squash; a front entry is popped once its condition
    /// (completion, address resolution) permanently clears.
    agg_ctrl: VecDeque<SeqNum>,
    agg_fence: VecDeque<SeqNum>,
    agg_mem: VecDeque<SeqNum>,
    agg_store: VecDeque<SeqNum>,
    /// One byte per ROB entry, kept in lockstep with `rob` (pushed at
    /// dispatch, popped at retire/squash), so the non-memory issue pass
    /// can find its candidates without touching the ~50x larger
    /// `DynInst` entries. Values: [`ISSUE_SKIP`] — the pass will never
    /// act on the entry again (left `Dispatched`, or `issue_done`);
    /// [`ISSUE_CHECK`] — re-examine every cycle (unexamined, woken,
    /// head-gated, or blocked with no identifiable producer);
    /// [`ISSUE_PARKED`] — blocked on `issue_blocked_on` and linked into
    /// that producer's waiter chain, which flips the flag back to
    /// [`ISSUE_CHECK`] when the producer completes.
    issue_flags: VecDeque<u8>,
    /// Seq-sorted queue of exactly the [`ISSUE_CHECK`] entries: the
    /// candidates the non-memory issue pass visits, in program order.
    /// Maintained incrementally at every flag transition (dispatch and
    /// wake insert; the pass itself drops entries it demotes; squash
    /// back-purges), so the pass never scans the ROB or even the flag
    /// mirror — its cost is proportional to the handful of entries that
    /// can actually make progress.
    issue_queue: VecDeque<SeqNum>,
    /// One byte per LQ entry, kept in lockstep with `lq` (pushed at
    /// dispatch, popped at retire, truncated with the squash `retain`),
    /// marking entries the load-issue pass must examine. Demoted to
    /// [`LQ_SKIP`] lazily by the scan itself when it re-confirms a
    /// skip condition whose every exit is hooked (no address yet, fill
    /// in flight, or performed and not awaiting exposure); promoted
    /// back to [`LQ_VISIT`] at those exits (address generation, a fill
    /// arriving into a store-data wait). Entries that must re-poll
    /// every cycle — VP-blocked, fence-blocked, store-data waits, or
    /// exposure-eligible invisible loads — simply stay `LQ_VISIT`.
    lq_flags: VecDeque<u8>,
    /// Number of [`LQ_VISIT`] bytes currently in `lq_flags`, maintained
    /// at every flag transition so the load-issue pass can prove in O(1)
    /// that a scan would visit nothing (the common case on a spinning or
    /// drained core) and return without touching the mirror at all.
    lq_visit_count: usize,
    /// SoA mirror of the per-entry fields the per-tick LQ *search* paths
    /// (TSO squash scan, memory-order-violation scan, pending-pin
    /// promotion) filter on, kept in lockstep with `lq` via
    /// [`Core::lq_sync`]: the 64-bit word index of the entry's address
    /// ([`LQ_NO_WORD`] until generated). Packing the filter keys into
    /// dense arrays lets those scans reject an entry from one or two
    /// cache lines instead of touching each ~100-byte [`LqEntry`].
    lq_words: Vec<u64>,
    /// SoA mirror, second column: packed status bits
    /// ([`LQS_PERFORMED`] / [`LQS_FORWARDED`] / [`LQS_INVISIBLE`] and the
    /// pin tag at [`LQS_PIN_SHIFT`]).
    lq_status: Vec<u8>,
}

/// `lq_flags` value: the load-issue pass would provably no-op (and emit
/// no stall statistics) on this entry; skip without reading it.
const LQ_SKIP: u8 = 0;
/// `lq_flags` value: the load-issue pass must examine this entry.
const LQ_VISIT: u8 = 1;

/// `issue_flags` value: entry needs no further attention from the
/// non-memory issue pass.
const ISSUE_SKIP: u8 = 0;
/// `issue_flags` value: entry must be examined every cycle.
const ISSUE_CHECK: u8 = 1;
/// `issue_flags` value: entry waits on `issue_blocked_on`; examine only
/// after a completion.
const ISSUE_PARKED: u8 = 2;

/// `lq_words` sentinel: the entry's address is not generated yet, so no
/// word- or line-keyed scan can match it.
const LQ_NO_WORD: u64 = u64::MAX;
/// `lq_status` bit: the value is bound (`performed_at.is_some()`).
const LQS_PERFORMED: u8 = 1 << 0;
/// `lq_status` bit: the value came from store-to-load forwarding.
const LQS_FORWARDED: u8 = 1 << 1;
/// `lq_status` bit: the value was bound invisibly (InvisiSpec).
const LQS_INVISIBLE: u8 = 1 << 2;
/// `lq_status` shift of the two-bit pin tag.
const LQS_PIN_SHIFT: u32 = 3;
/// Pin tags stored at [`LQS_PIN_SHIFT`].
const LQS_PIN_UNPINNED: u8 = 0;
const LQS_PIN_PENDING: u8 = 1;
const LQS_PIN_PINNED: u8 = 2;

/// The packed `lq_status` byte for one LQ entry.
fn lq_status_of(e: &LqEntry) -> u8 {
    let mut s = 0u8;
    if e.performed() {
        s |= LQS_PERFORMED;
    }
    if e.forwarded {
        s |= LQS_FORWARDED;
    }
    if e.invisible {
        s |= LQS_INVISIBLE;
    }
    s | (match e.pin {
        PinState::Unpinned => LQS_PIN_UNPINNED,
        PinState::Pending => LQS_PIN_PENDING,
        PinState::Pinned => LQS_PIN_PINNED,
    } << LQS_PIN_SHIFT)
}

impl Core {
    /// Creates a core running `program` under the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; call
    /// [`MachineConfig::validate`] first.
    pub fn new(id: CoreId, cfg: &MachineConfig, program: Arc<Program>) -> Core {
        cfg.validate()
            .expect("core requires a valid machine configuration");
        let vp_mask = VpMask::from(cfg.threat_model);
        let trace_cap = cfg.trace.capacity();
        let mut l1 = Cache::new(&cfg.mem.l1d);
        l1.enable_trace(TraceSource::CoreL1(id.0), trace_cap);
        let mut governor = PinGovernor::new(cfg);
        governor.enable_trace(id.0, trace_cap);
        let mut stats = Stats::new();
        let ids = CoreStatIds::intern(&mut stats);
        // Interned up front so strict lookups see it even when it (as it
        // should) stays zero.
        stats.add("protocol.ack_underflows", 0);
        Core {
            id,
            cfg: cfg.clone(),
            program,
            policy: IssuePolicy::new(cfg.defense),
            vp_mask,
            bp: BranchPredictor::new(cfg.core.btb_entries, cfg.core.ras_entries),
            fetch_pc: Pc::ENTRY,
            fetch_halted: false,
            fetch_stalled_until: Cycle::ZERO,
            fetch_buf: VecDeque::new(),
            rob: VecDeque::new(),
            next_seq: SeqNum(0),
            rename: [None; pl_isa::inst::NUM_REGS],
            regfile: [0; pl_isa::inst::NUM_REGS],
            lq: Vec::new(),
            sq: Vec::new(),
            wb: WriteBuffer::new(cfg.core.write_buffer_entries),
            wb_needs_unblock: false,
            l1,
            mshrs: MshrFile::new(cfg.mem.l1d.mshr_entries),
            pending_installs: Vec::new(),
            read_retries: Vec::new(),
            governor,
            taint: TaintTracker::new(),
            atomic: AtomicTxn::default(),
            arch_call_stack: Vec::new(),
            aggr: Aggregates::default(),
            outbox: Vec::new(),
            tracer: Tracer::new(TraceSource::Core(id.0), trace_cap),
            check: CheckSink::new(cfg.verify.enabled),
            mutation: cfg.verify.mutation,
            mutation_armed: cfg.verify.mutation == Mutation::IgnorePinOnInv,
            stats,
            ids,
            halted: false,
            retired: 0,
            scratch_installs: Vec::new(),
            scratch_lines: Vec::new(),
            scratch_seqs: Vec::new(),
            scratch_due: Vec::new(),
            exec_heap: BinaryHeap::with_capacity(cfg.core.rob_entries),
            agg_ctrl: VecDeque::with_capacity(cfg.core.rob_entries),
            agg_fence: VecDeque::with_capacity(cfg.core.rob_entries),
            agg_mem: VecDeque::with_capacity(cfg.core.rob_entries),
            agg_store: VecDeque::with_capacity(cfg.core.rob_entries),
            issue_flags: VecDeque::with_capacity(cfg.core.rob_entries),
            issue_queue: VecDeque::with_capacity(cfg.core.rob_entries),
            lq_flags: VecDeque::with_capacity(cfg.core.lq_entries),
            lq_visit_count: 0,
            lq_words: Vec::with_capacity(cfg.core.lq_entries),
            lq_status: Vec::with_capacity(cfg.core.lq_entries),
        }
    }

    /// This core's identifier.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Overrides the Visibility-Point mask, used by the Figure 1 study to
    /// release fences at the four cumulative points instead of a full
    /// threat model.
    pub fn set_vp_mask(&mut self, mask: VpMask) {
        self.vp_mask = mask;
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Returns `true` once the program halted and all buffered state
    /// (write buffer, in-flight transactions) has drained.
    pub fn quiesced(&self) -> bool {
        self.halted
            && self.wb.is_empty()
            && !self.atomic.active
            && self.outbox.is_empty()
            && self.pending_installs.is_empty()
    }

    /// Returns `true` once the program has executed its halt.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Accumulated per-core statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The pinning governor (pin statistics, CPT state).
    pub fn governor(&self) -> &PinGovernor {
        &self.governor
    }

    /// The tracers owned by this core, in canonical merge order:
    /// pipeline, private L1, pin governor. All are disabled (and empty)
    /// unless the machine configuration enabled tracing.
    pub fn tracers(&self) -> [&Tracer; 3] {
        [&self.tracer, self.l1.tracer(), self.governor.tracer()]
    }

    /// Sets an architectural register before the program starts, used by
    /// workloads to pass arguments (base pointers, thread IDs).
    pub fn set_reg(&mut self, reg: Reg, value: u64) {
        if !reg.is_zero() {
            self.regfile[reg.index()] = value;
        }
    }

    /// Reads an architectural register after the program halts.
    pub fn reg(&self, reg: Reg) -> u64 {
        self.regfile[reg.index()]
    }

    /// Returns `true` if this core currently has `line` pinned — the
    /// machine's `PinView` consults this.
    pub fn is_line_pinned(&self, line: LineAddr) -> bool {
        self.governor.is_line_pinned(line)
    }

    /// One-line description of pipeline state for deadlock diagnostics.
    pub fn debug_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "{}: halted={} rob={} lq={} sq={} wb={} retired={}",
            self.id,
            self.halted,
            self.rob.len(),
            self.lq.len(),
            self.sq.len(),
            self.wb.len(),
            self.retired
        );
        if let Some(head) = self.rob.front() {
            let _ = write!(s, " head=[{} {} {:?}]", head.seq, head.inst, head.stage);
        }
        if let Some(wbh) = self.wb.head() {
            let _ = write!(
                s,
                " wb_head=[{} {:?} acks={} defer={} star={}]",
                wbh.line(),
                wbh.state,
                wbh.acks_pending,
                wbh.saw_defer,
                wbh.use_star
            );
        }
        if self.atomic.active {
            let _ = write!(
                s,
                " atomic=[{} retry={}]",
                self.atomic.line, self.atomic.waiting_retry
            );
        }
        // Sort for a deterministic dump: MSHRs live in a hash map, and a
        // diagnosis must not depend on its iteration order.
        let mut mshr_lines: Vec<_> = self.mshrs.lines().collect();
        mshr_lines.sort_unstable();
        let mut sep = " mshrs=[";
        for l in mshr_lines {
            let _ = write!(s, "{sep}{l}");
            sep = ", ";
        }
        if sep == ", " {
            s.push(']');
        }
        if !self.pending_installs.is_empty() {
            let _ = write!(s, " pending_installs={}", self.pending_installs.len());
        }
        s
    }

    /// Removes and returns all outbound coherence messages.
    pub fn drain_outbox(&mut self) -> Vec<(NodeId, Msg)> {
        std::mem::take(&mut self.outbox)
    }

    /// Drains all outbound coherence messages into `out`, preserving both
    /// buffers' capacity (the steady-state routing path).
    pub fn drain_outbox_into(&mut self, out: &mut Vec<(NodeId, Msg)>) {
        out.append(&mut self.outbox);
    }

    /// Returns `true` while no outbound coherence message is pending.
    /// The machine's spin-parking replay asserts this after each
    /// catch-up tick: a verified spin window sent nothing, so neither
    /// may its repeats.
    pub fn outbox_is_empty(&self) -> bool {
        self.outbox.is_empty()
    }

    fn home(&self, line: LineAddr) -> NodeId {
        NodeId::Slice(home_slice(line, self.cfg.mem.llc_slices))
    }

    fn send(&mut self, dst: NodeId, msg: Msg) {
        self.outbox.push((dst, msg));
    }

    // ------------------------------------------------------------------
    // Inbound coherence messages
    // ------------------------------------------------------------------

    /// Processes one message delivered by the interconnect.
    pub fn handle_msg(&mut self, msg: Msg, now: Cycle, image: &mut Memory) {
        match msg {
            Msg::Data {
                line,
                grant,
                acks_expected,
            } => self.on_data(line, grant, acks_expected, now, image),
            Msg::OwnerData { line, grant, .. } => self.on_owner_data(line, grant, now, image),
            Msg::Inv {
                line,
                requester,
                star,
            } => self.on_inv(line, requester, star, now),
            Msg::FwdGetS { line, requester } => self.on_fwd_gets(line, requester),
            Msg::FwdGetX {
                line,
                requester,
                star,
            } => self.on_fwd_getx(line, requester, star, now),
            Msg::BackInv { line, slice } => self.on_back_inv(line, slice, now),
            Msg::Clear { line } => self.on_clear_msg(line),
            Msg::Nack { line, was_write } => self.on_nack(line, was_write, now),
            Msg::InvAck { line, .. } => self.on_inv_ack(line, false, now, image),
            Msg::InvDefer { line, .. } => self.on_inv_ack(line, true, now, image),
            other => {
                debug_assert!(
                    false,
                    "core {} received unexpected message {other}",
                    self.id
                );
            }
        }
    }

    fn write_txn_matches(&self, line: LineAddr) -> Option<bool /*is_atomic*/> {
        if self.atomic.active && !self.atomic.waiting_retry && self.atomic.line == line {
            return Some(true);
        }
        if let Some(head) = self.wb.head() {
            if head.state == WbState::Requested && head.line() == line {
                return Some(false);
            }
        }
        None
    }

    fn on_data(
        &mut self,
        line: LineAddr,
        grant: DataGrant,
        acks_expected: usize,
        now: Cycle,
        image: &mut Memory,
    ) {
        if grant == DataGrant::Modified {
            match self.write_txn_matches(line) {
                Some(true) => {
                    self.atomic.have_data = true;
                    self.atomic.acks_pending = acks_expected;
                    self.atomic.needs_unblock = acks_expected > 0;
                    self.try_finish_write(true, now, image);
                    return;
                }
                Some(false) => {
                    let head = self.wb.head_mut().expect("matched write txn has a head");
                    head.have_data = true;
                    head.acks_pending = acks_expected;
                    self.wb_needs_unblock = acks_expected > 0;
                    self.try_finish_write(false, now, image);
                    return;
                }
                None => {}
            }
        }
        // Read fill.
        let state = match grant {
            DataGrant::Shared => Mesi::Shared,
            DataGrant::Exclusive => Mesi::Exclusive,
            DataGrant::Modified => Mesi::Modified,
        };
        self.install_or_queue(line, state, InstallAction::ReadFill, now, image);
    }

    fn on_owner_data(&mut self, line: LineAddr, grant: DataGrant, now: Cycle, image: &mut Memory) {
        if grant == DataGrant::Modified {
            match self.write_txn_matches(line) {
                Some(true) => {
                    self.atomic.have_data = true;
                    self.atomic.needs_unblock = true;
                    self.try_finish_write(true, now, image);
                    return;
                }
                Some(false) => {
                    let head = self.wb.head_mut().expect("matched write txn has a head");
                    head.have_data = true;
                    self.wb_needs_unblock = true;
                    self.try_finish_write(false, now, image);
                    return;
                }
                None => {}
            }
        }
        self.install_or_queue(line, Mesi::Shared, InstallAction::ReadFill, now, image);
    }

    fn on_inv_ack(&mut self, line: LineAddr, defer: bool, now: Cycle, image: &mut Memory) {
        match self.write_txn_matches(line) {
            Some(true) => {
                if defer {
                    self.atomic.saw_defer = true;
                }
                if self.atomic.acks_pending > 0 {
                    self.atomic.acks_pending -= 1;
                } else if self.atomic.have_data {
                    self.record_ack_underflow(line);
                }
                self.try_finish_write(true, now, image);
            }
            Some(false) => {
                let underflow = {
                    let head = self.wb.head_mut().expect("matched write txn has a head");
                    if defer {
                        head.saw_defer = true;
                    }
                    if head.acks_pending > 0 {
                        head.acks_pending -= 1;
                        false
                    } else {
                        head.have_data
                    }
                };
                if underflow {
                    self.record_ack_underflow(line);
                }
                self.try_finish_write(false, now, image);
            }
            None => {
                // Stale response from an aborted attempt; drop it.
            }
        }
    }

    /// An InvAck/InvDefer arrived *after* this transaction's Data had
    /// already set (and the acks drained) the expected count. A
    /// zero-count ack *before* Data is different — it is a stale response
    /// from an aborted earlier attempt on the same line, which
    /// `write_txn_matches` cannot distinguish, and same-round acks can
    /// never beat the Data (mesh triangle inequality) — so only the
    /// post-Data case is a protocol violation. The old `saturating_sub`
    /// silently swallowed both; the stale case is still tolerated, while
    /// the genuine underflow now panics in debug builds and is counted
    /// and reported to the checker in release builds.
    fn record_ack_underflow(&mut self, line: LineAddr) {
        self.check.emit(CheckEvent::AckUnderflow {
            core: self.id,
            line,
        });
        self.stats.incr("protocol.ack_underflows");
        debug_assert!(
            false,
            "core {}: InvAck underflow on {line} (more acks than expected)",
            self.id
        );
    }

    /// Checks whether the current write transaction (write-buffer head or
    /// atomic) can finish — all responses in — and either merges the write
    /// or aborts and schedules the starred retry.
    fn try_finish_write(&mut self, is_atomic: bool, now: Cycle, image: &mut Memory) {
        let (have_data, acks, saw_defer, needs_unblock) = if is_atomic {
            (
                self.atomic.have_data,
                self.atomic.acks_pending,
                self.atomic.saw_defer,
                self.atomic.needs_unblock,
            )
        } else {
            let Some(head) = self.wb.head() else { return };
            (
                head.have_data,
                head.acks_pending,
                head.saw_defer,
                self.wb_needs_unblock,
            )
        };
        // For the FwdGetX path a defer arrives without data; treat the
        // defer itself as terminal once no acks remain.
        if acks > 0 || (!have_data && !saw_defer) {
            return;
        }
        let line = if is_atomic {
            self.atomic.line
        } else {
            self.wb.head().expect("write head exists").line()
        };
        if saw_defer {
            // A sharer pinned the line: abort at the directory, retry with
            // GetX* after a backoff (Figure 5a).
            self.send(
                self.home(line),
                Msg::Abort {
                    line,
                    from: self.id,
                },
            );
            self.stats.incr_id(self.ids.wb_writes_retried);
            self.tracer.emit(EventKind::WriteAborted { line });
            self.check.emit(CheckEvent::WriteAborted {
                core: self.id,
                line,
            });
            if is_atomic {
                self.atomic.use_star = true;
                self.atomic.have_data = false;
                self.atomic.saw_defer = false;
                self.atomic.waiting_retry = true;
                self.atomic.retry_at = now + DEFER_RETRY_DELAY;
            } else {
                let head = self.wb.head_mut().expect("write head exists");
                head.use_star = true;
                head.have_data = false;
                head.saw_defer = false;
                head.state = WbState::WaitingRetry;
                head.retry_at = now + DEFER_RETRY_DELAY;
            }
            return;
        }
        // Success: install in M and merge.
        let action = if is_atomic {
            InstallAction::AtomicFinish { needs_unblock }
        } else {
            InstallAction::WriteMerge { needs_unblock }
        };
        self.install_or_queue(line, Mesi::Modified, action, now, image);
    }

    fn on_inv(&mut self, line: LineAddr, requester: CoreId, star: bool, now: Cycle) {
        if star && self.governor.on_inv_star(line) {
            self.emit_cpt_inserted(line);
        }
        let pinned = self.governor.is_line_pinned(line);
        let ignore_pin = pinned && self.take_ignore_pin_mutation();
        if pinned && !ignore_pin {
            // Section 5.1.1: the cache is not invalidated, the load is not
            // squashed, and a Defer is sent to the writer.
            self.stats.incr_id(self.ids.l1_invs_deferred);
            self.tracer.emit(EventKind::InvDeferred { line });
            self.send(
                NodeId::Core(requester),
                Msg::InvDefer {
                    line,
                    from: self.id,
                },
            );
            return;
        }
        if !ignore_pin {
            // The mutation path deliberately skips the squash too: the
            // pinned load keeps its stale value, which is exactly the bug
            // the checker must flag.
            self.squash_tso_loads(line, self.ids.squash_mcv_inv, "mcv_inv", now);
        }
        self.l1.invalidate(line);
        self.check.emit(CheckEvent::L1Invalidated {
            core: self.id,
            line,
            cause: InvalidateCause::Inv,
        });
        self.send(
            NodeId::Core(requester),
            Msg::InvAck {
                line,
                from: self.id,
            },
        );
    }

    /// Consumes the armed `IgnorePinOnInv` mutation, if any. Fires at
    /// most once per run.
    fn take_ignore_pin_mutation(&mut self) -> bool {
        if self.mutation_armed && self.mutation == Mutation::IgnorePinOnInv {
            self.mutation_armed = false;
            true
        } else {
            false
        }
    }

    /// Reports a CPT insert (an `Inv*` arrived) to the checker.
    fn emit_cpt_inserted(&mut self, line: LineAddr) {
        self.check.emit(CheckEvent::CptInserted {
            core: self.id,
            line,
            occupancy: self.governor.cpt().occupancy(),
        });
    }

    /// Handles an inbound `Clear`: the starred write that forbade pinning
    /// this line has committed, so the CPT entry (if one was recorded —
    /// an overflowed CPT legally has none) is released.
    fn on_clear_msg(&mut self, line: LineAddr) {
        if self.governor.on_clear(line) {
            self.check.emit(CheckEvent::CptRemoved {
                core: self.id,
                line,
                occupancy: self.governor.cpt().occupancy(),
            });
        }
    }

    fn on_fwd_gets(&mut self, line: LineAddr, requester: CoreId) {
        // Downgrade M/E -> S; reads do not invalidate, so no squash and no
        // defer are needed.
        let dirty = match self.l1.get_mut(line) {
            Some(state) => {
                let was_dirty = *state == Mesi::Modified;
                *state = Mesi::Shared;
                was_dirty
            }
            None => false,
        };
        self.send(
            NodeId::Core(requester),
            Msg::OwnerData {
                line,
                grant: DataGrant::Shared,
                from: self.id,
            },
        );
        self.send(
            self.home(line),
            Msg::CopyBack {
                line,
                from: self.id,
                dirty,
            },
        );
    }

    fn on_fwd_getx(&mut self, line: LineAddr, requester: CoreId, star: bool, now: Cycle) {
        if star && self.governor.on_inv_star(line) {
            self.emit_cpt_inserted(line);
        }
        if self.governor.is_line_pinned(line) {
            self.stats.incr_id(self.ids.l1_invs_deferred);
            self.tracer.emit(EventKind::InvDeferred { line });
            self.send(
                NodeId::Core(requester),
                Msg::InvDefer {
                    line,
                    from: self.id,
                },
            );
            return;
        }
        self.squash_tso_loads(line, self.ids.squash_mcv_inv, "mcv_inv", now);
        self.l1.invalidate(line);
        self.check.emit(CheckEvent::L1Invalidated {
            core: self.id,
            line,
            cause: InvalidateCause::FwdGetX,
        });
        self.send(
            NodeId::Core(requester),
            Msg::OwnerData {
                line,
                grant: DataGrant::Modified,
                from: self.id,
            },
        );
    }

    fn on_back_inv(&mut self, line: LineAddr, slice: usize, now: Cycle) {
        if self.governor.is_line_pinned(line) {
            self.stats.incr_id(self.ids.l1_back_invs_deferred);
            self.tracer.emit(EventKind::InvDeferred { line });
            self.send(
                NodeId::Slice(slice),
                Msg::BackInvDefer {
                    line,
                    from: self.id,
                },
            );
            return;
        }
        self.squash_tso_loads(line, self.ids.squash_mcv_evict, "mcv_evict", now);
        let dirty = self.l1.invalidate(line) == Some(Mesi::Modified);
        self.check.emit(CheckEvent::L1Invalidated {
            core: self.id,
            line,
            cause: InvalidateCause::BackInv,
        });
        self.send(
            NodeId::Slice(slice),
            Msg::BackInvAck {
                line,
                from: self.id,
                dirty,
            },
        );
    }

    fn on_nack(&mut self, line: LineAddr, was_write: bool, now: Cycle) {
        self.stats.incr_id(self.ids.l1_nacks);
        if was_write {
            // The rejected request was our GetX (write-buffer head or
            // atomic); the tag prevents misattributing a nacked *read* on
            // the same line to the write transaction.
            if self.atomic.active && self.atomic.line == line && !self.atomic.waiting_retry {
                self.atomic.waiting_retry = true;
                self.atomic.retry_at = now + NACK_RETRY_DELAY;
                self.atomic.have_data = false;
                return;
            }
            if let Some(head) = self.wb.head_mut() {
                if head.state == WbState::Requested && head.line() == line {
                    head.state = WbState::WaitingRetry;
                    head.retry_at = now + NACK_RETRY_DELAY;
                    head.have_data = false;
                }
            }
            return;
        }
        // A read request was nacked: retry the GetS while the miss is
        // still wanted.
        if self.mshrs.contains(line) {
            self.read_retries.push((now + NACK_RETRY_DELAY, line));
        }
    }

    /// TSO conservative squash: any performed-but-unretired load on `line`
    /// that is not the oldest load in the ROB is squashed, along with its
    /// successors (Section 2). `counter` attributes the squash in the
    /// statistics and `cause` in the event trace.
    fn squash_tso_loads(
        &mut self,
        line: LineAddr,
        counter: StatId,
        cause: &'static str,
        now: Cycle,
    ) {
        // The aggressive implementation never squashes the oldest load in
        // the ROB (it cannot have been reordered); the conservative one
        // squashes any matching performed load (Section 2).
        let oldest_seq = if self.cfg.core.conservative_tso {
            None
        } else {
            self.lq.first().map(|e| e.seq)
        };
        // SoA scan: every predicate term is a packed column, so the usual
        // no-victim outcome rejects each entry from the two dense mirrors
        // without touching the LQ entries at all. The oldest-load
        // exemption is positional — `oldest_seq` is exactly `lq[0]` —
        // so the aggressive mode starts the scan at index 1.
        debug_assert!(self.lq_soa_consistent());
        let start = usize::from(oldest_seq.is_some());
        let victim = self
            .lq_words
            .iter()
            .zip(self.lq_status.iter())
            .skip(start)
            .position(|(&w, &s)| {
                w != LQ_NO_WORD
                    && w >> 3 == line.raw()
                    && s & (LQS_PERFORMED | LQS_FORWARDED | LQS_INVISIBLE) == LQS_PERFORMED
                    && (s >> LQS_PIN_SHIFT) & 0b11 != LQS_PIN_PINNED
            })
            .map(|i| &self.lq[start + i]);
        debug_assert_eq!(
            victim.map(|v| v.seq),
            self.lq
                .iter()
                .find(|e| {
                    e.performed()
                        && !e.forwarded
                        && !e.invisible
                        && e.pin != PinState::Pinned
                        && e.line() == Some(line)
                        && Some(e.seq) != oldest_seq
                })
                .map(|e| e.seq)
        );
        if let Some(v) = victim {
            let seq = v.seq;
            debug_assert_eq!(
                v.pin,
                PinState::Unpinned,
                "pending loads have not performed"
            );
            let pc = self
                .rob_entry(seq)
                .map(|e| e.pc)
                .expect("squashed load is in the ROB");
            self.stats.incr_id(counter);
            self.squash_from(seq, pc, cause, now);
        }
    }

    // ------------------------------------------------------------------
    // Install path
    // ------------------------------------------------------------------

    fn install_or_queue(
        &mut self,
        line: LineAddr,
        state: Mesi,
        action: InstallAction,
        now: Cycle,
        image: &mut Memory,
    ) {
        // A late read fill (e.g. a nacked-then-regranted prefetch) must
        // not downgrade a line we already hold with write permission.
        let state = match self.l1.peek(line) {
            Some(&existing) if existing.writable() && !state.writable() => existing,
            _ => state,
        };
        if self.try_install(line, state, now) {
            self.run_install_action(line, action, now, image);
        } else {
            self.pending_installs.push(PendingInstall {
                line,
                state,
                action,
                retry_at: now + INSTALL_RETRY_DELAY,
            });
        }
    }

    /// Attempts to place `line` into the L1, honoring pinned-line eviction
    /// denial. Returns `false` if every victim in the set is pinned.
    fn try_install(&mut self, line: LineAddr, state: Mesi, now: Cycle) -> bool {
        let governor = &self.governor;
        let result = self
            .l1
            .insert(line, state, |victim, _| !governor.is_line_pinned(victim));
        match result {
            Ok(None) => true,
            Ok(Some((victim, victim_state))) => {
                // Evicting a line with performed unretired loads squashes
                // them (conservative TSO), and the directory must be told.
                self.squash_tso_loads(victim, self.ids.squash_mcv_evict, "mcv_evict", now);
                self.stats.incr_id(self.ids.l1_evictions);
                self.check.emit(CheckEvent::L1Invalidated {
                    core: self.id,
                    line: victim,
                    cause: InvalidateCause::Evict,
                });
                let msg = if victim_state == Mesi::Modified {
                    Msg::PutM {
                        line: victim,
                        from: self.id,
                    }
                } else {
                    Msg::PutS {
                        line: victim,
                        from: self.id,
                    }
                };
                self.send(self.home(victim), msg);
                true
            }
            Err(_) => {
                self.stats.incr_id(self.ids.l1_evictions_denied);
                false
            }
        }
    }

    fn run_install_action(
        &mut self,
        line: LineAddr,
        action: InstallAction,
        now: Cycle,
        image: &mut Memory,
    ) {
        match action {
            InstallAction::ReadFill => {
                let waiters = self.mshrs.complete(line);
                for seq in waiters {
                    self.perform_waiting_load(seq, now, image);
                }
                // Late Pinning: loads that issued pin-pending on this line
                // become pinned the moment their data arrives.
                self.promote_pending_pins(line);
            }
            InstallAction::WriteMerge { needs_unblock } => {
                let head = self.wb.pop().expect("write merge requires a head entry");
                image.write(head.addr, head.value);
                self.stats.incr_id(self.ids.wb_merges);
                self.check.emit(CheckEvent::WriteFinished {
                    core: self.id,
                    line,
                });
                if needs_unblock {
                    self.send(
                        self.home(line),
                        Msg::Unblock {
                            line,
                            from: self.id,
                        },
                    );
                }
                self.wb_needs_unblock = false;
                self.promote_pending_pins(line);
            }
            InstallAction::AtomicFinish { needs_unblock } => {
                self.finish_atomic(now, image);
                if needs_unblock {
                    self.send(
                        self.home(line),
                        Msg::Unblock {
                            line,
                            from: self.id,
                        },
                    );
                }
            }
        }
    }

    fn promote_pending_pins(&mut self, line: LineAddr) {
        debug_assert!(self.lq_soa_consistent());
        for i in 0..self.lq.len() {
            // SoA pre-filter: pin-pending entries on this line are rare,
            // so reject on the packed columns without reading the entry.
            if (self.lq_status[i] >> LQS_PIN_SHIFT) & 0b11 != LQS_PIN_PENDING {
                continue;
            }
            let w = self.lq_words[i];
            if w == LQ_NO_WORD || w >> 3 != line.raw() {
                continue;
            }
            debug_assert!(self.lq[i].pin == PinState::Pending && self.lq[i].line() == Some(line));
            self.lq[i].pin = PinState::Pinned;
            self.lq_sync(i);
            if self.governor.record_pin(line) {
                self.check.emit(CheckEvent::PinAcquired {
                    core: self.id,
                    line,
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // The pipeline tick
    // ------------------------------------------------------------------

    /// Advances the core by one cycle. Returns `true` if any pipeline
    /// state changed ("active"), `false` for a *quiet* tick whose only
    /// effects are time-independent statistics (the per-cycle counter,
    /// stall counters, occupancy samples). The machine's idle-cycle
    /// fast-forward relies on a quiet tick repeating identically until
    /// [`Core::next_timed_event`] or an inbound message.
    pub fn tick(&mut self, now: Cycle, image: &mut Memory) -> bool {
        self.stats.incr_id(self.ids.cycles);
        if now.raw().is_multiple_of(OCC_SAMPLE_PERIOD) {
            self.stats
                .sample_id(self.ids.occ_rob, self.rob.len() as u64);
            self.stats.sample_id(self.ids.occ_lq, self.lq.len() as u64);
            self.stats.sample_id(self.ids.occ_wb, self.wb.len() as u64);
        }
        if self.tracer.enabled() {
            self.tracer.set_now(now);
            self.l1.tracer_mut().set_now(now);
            self.governor.tracer_mut().set_now(now);
        }
        let mut active = self.retry_pending_installs(now, image);
        active |= self.retry_reads(now);
        active |= self.commit(now, image);
        active |= self.drain_write_buffer(now, image);
        active |= self.step_atomic(now, image);
        self.aggr = self.aggregates();
        self.check_vp_progress();
        if self.policy.tracks_taint() {
            active |= self.propagate_taint();
        }
        active |= self.pin_pass(now);
        active |= self.trace_vp_conditions();
        active |= self.complete_executing(now, image);
        active |= self.issue(now, image);
        active |= self.dispatch(now);
        active |= self.fetch(now);
        active
    }

    /// Re-synchronizes the tracers' clock without ticking. The naive run
    /// loop ticks every core every cycle, so a message handled at cycle
    /// `c` stamps trace events with the clock the previous tick left
    /// (`c - 1`); the event-driven loop calls this when waking a parked
    /// core so the stamps match exactly.
    pub fn sync_trace_now(&mut self, now: Cycle) {
        if self.tracer.enabled() {
            self.tracer.set_now(now);
            self.l1.tracer_mut().set_now(now);
            self.governor.tracer_mut().set_now(now);
        }
    }

    /// The earliest future cycle at which this core has self-scheduled
    /// work: execution completions, retry timers, the fetch-stall window.
    /// `None` means the core stays quiet until an inbound message (or
    /// some other core-visible state change) arrives. Candidates may be
    /// conservative — earlier than strictly necessary — because the
    /// machine only uses them to bound idle-cycle fast-forward skips.
    pub fn next_timed_event(&self, now: Cycle) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        let mut consider = |c: Cycle| {
            next = Some(match next {
                Some(n) if n <= c => n,
                _ => c,
            });
        };
        // Min over pending completions. Stale heap entries only make the
        // bound conservatively early, which is allowed; every live
        // `Executing` entry is present, so it is never late.
        if let Some(&Reverse((done_at, _))) = self.exec_heap.peek() {
            consider(done_at);
        }
        for p in &self.pending_installs {
            consider(p.retry_at);
        }
        for &(at, _) in &self.read_retries {
            consider(at);
        }
        if let Some(h) = self.wb.head() {
            if h.state == WbState::WaitingRetry {
                consider(h.retry_at);
            }
        }
        if self.atomic.active && self.atomic.waiting_retry {
            consider(self.atomic.retry_at);
        }
        // Fetch wakes on its own only when the stall window expires while
        // there is buffer space; a full buffer waits on dispatch instead.
        if !self.fetch_halted
            && self.fetch_buf.len() < FETCH_BUF_CAP
            && now < self.fetch_stalled_until
        {
            consider(self.fetch_stalled_until);
        }
        next
    }

    /// Applies `ticks` quiet-tick statistic deltas and `occ_samples`
    /// occupancy-histogram samples in one shot — the machine's
    /// fast-forward replay. `*_before`/`*_after` are
    /// [`Stats::counter_values`] snapshots (core pipeline and pin
    /// governor) bracketing one representative quiet tick.
    pub fn replay_quiet_ticks(
        &mut self,
        core_before: &[u64],
        core_after: &[u64],
        gov_before: &[u64],
        gov_after: &[u64],
        ticks: u64,
        occ_samples: u64,
    ) {
        self.stats
            .replay_counter_delta(core_before, core_after, ticks);
        self.governor
            .stats_mut()
            .replay_counter_delta(gov_before, gov_after, ticks);
        if occ_samples > 0 {
            self.stats
                .sample_n_id(self.ids.occ_rob, self.rob.len() as u64, occ_samples);
            self.stats
                .sample_n_id(self.ids.occ_lq, self.lq.len() as u64, occ_samples);
            self.stats
                .sample_n_id(self.ids.occ_wb, self.wb.len() as u64, occ_samples);
        }
    }

    fn retry_pending_installs(&mut self, now: Cycle, image: &mut Memory) -> bool {
        if self.pending_installs.is_empty() {
            return false;
        }
        let mut due = std::mem::take(&mut self.scratch_installs);
        due.clear();
        self.pending_installs.retain(|p| {
            if p.retry_at <= now {
                due.push(*p);
                false
            } else {
                true
            }
        });
        let any = !due.is_empty();
        for p in due.drain(..) {
            self.install_or_queue(p.line, p.state, p.action, now, image);
        }
        self.scratch_installs = due;
        any
    }

    fn retry_reads(&mut self, now: Cycle) -> bool {
        if self.read_retries.is_empty() {
            return false;
        }
        let mut due = std::mem::take(&mut self.scratch_lines);
        due.clear();
        self.read_retries.retain(|&(at, line)| {
            if at <= now {
                due.push(line);
                false
            } else {
                true
            }
        });
        let any = !due.is_empty();
        for line in due.drain(..) {
            if self.mshrs.contains(line) {
                self.send(
                    self.home(line),
                    Msg::GetS {
                        line,
                        requester: self.id,
                    },
                );
            }
        }
        self.scratch_lines = due;
        any
    }

    // ---- commit ----

    fn commit(&mut self, now: Cycle, _image: &mut Memory) -> bool {
        // Every stall path breaks *before* mutating, so "anything retired"
        // is exactly "anything changed".
        let retired_before = self.retired;
        for _ in 0..self.cfg.core.commit_width {
            let Some(head) = self.rob.front() else { break };
            if !head.completed() {
                break;
            }
            let seq = head.seq;
            let inst = head.inst;
            let pc = head.pc;
            let result = head.result;
            let head_dispatched = head.dispatched_at;

            // Stores move to the write buffer at retirement (TSO).
            if matches!(inst, Inst::Store { .. }) {
                let entry = self.sq.first().expect("retiring store has an SQ entry");
                debug_assert_eq!(entry.seq, seq);
                let (addr, data) = (
                    entry.addr.expect("resolved store"),
                    entry.data.expect("resolved store"),
                );
                if self.wb.push(addr, data).is_err() {
                    self.stats.incr_id(self.ids.stall_wb_full);
                    break;
                }
                self.sq.remove(0);
            }
            if inst.is_load() && !inst.is_atomic() {
                let entry = self.lq.first().expect("retiring load has an LQ entry");
                debug_assert_eq!(entry.seq, seq);
                if entry.invisible {
                    // InvisiSpec: the exposed validation access has not
                    // completed; the load cannot leave the pipeline yet.
                    self.stats.incr_id(self.ids.stall_validation);
                    break;
                }
                if entry.pin == PinState::Pinned {
                    let line = entry.line().expect("pinned load has an address");
                    if self.governor.record_unpin(line) {
                        self.check.emit(CheckEvent::PinReleased {
                            core: self.id,
                            line,
                        });
                    }
                }
                if self.check.enabled() {
                    if let (Some(addr), Some(value)) = (entry.addr, entry.value) {
                        let latency = entry.performed_at.map_or(0, |p| p.since(head_dispatched));
                        self.check.emit(CheckEvent::LoadRetired {
                            core: self.id,
                            seq: seq.0,
                            addr,
                            value,
                            latency,
                        });
                    }
                }
                self.lq.remove(0);
                if self.lq_flags.pop_front() == Some(LQ_VISIT) {
                    self.lq_visit_count -= 1;
                }
                self.lq_words.remove(0);
                self.lq_status.remove(0);
            }
            match inst {
                Inst::Call { .. } => self.arch_call_stack.push(pc.next()),
                Inst::Ret => {
                    self.arch_call_stack.pop();
                }
                Inst::Halt => {
                    self.halted = true;
                    self.fetch_halted = true;
                }
                _ => {}
            }
            if let (Some(dst), Some(v)) = (inst.def_reg(), result) {
                self.regfile[dst.index()] = v;
                if self.rename[dst.index()] == Some(seq) {
                    self.rename[dst.index()] = None;
                }
            }
            self.taint.clear(seq);
            self.rob.pop_front();
            self.issue_flags.pop_front();
            self.retired += 1;
            self.tracer.emit(EventKind::Retire {
                seq,
                pc: pc.0 as u64,
            });
            self.stats.incr_id(self.ids.retired);
            self.stats
                .sample_id(self.ids.rob_commit_latency, now.since(head_dispatched));
            if self.halted {
                break;
            }
        }
        self.retired != retired_before
    }

    // ---- write buffer drain ----

    fn drain_write_buffer(&mut self, now: Cycle, image: &mut Memory) -> bool {
        let Some(head) = self.wb.head() else {
            return false;
        };
        match head.state {
            WbState::Idle => {
                let line = head.line();
                let addr = head.addr;
                let value = head.value;
                let use_star = head.use_star;
                if self.l1.peek(line).is_some_and(|s| s.writable()) {
                    // Silent upgrade/merge: the line is already E/M here.
                    if let Some(s) = self.l1.get_mut(line) {
                        *s = Mesi::Modified;
                    }
                    image.write(addr, value);
                    self.wb.pop();
                    self.stats.incr_id(self.ids.wb_merges);
                    self.check.emit(CheckEvent::WriteFinished {
                        core: self.id,
                        line,
                    });
                    self.promote_pending_pins(line);
                } else {
                    self.send(
                        self.home(line),
                        Msg::GetX {
                            line,
                            requester: self.id,
                            star: use_star,
                        },
                    );
                    let head = self.wb.head_mut().expect("head still present");
                    head.state = WbState::Requested;
                    head.have_data = false;
                    head.saw_defer = false;
                    head.acks_pending = 0;
                    self.wb_needs_unblock = false;
                }
                // Both Idle branches mutate (merge or request send).
                true
            }
            WbState::Requested => false,
            WbState::WaitingRetry => {
                if now >= head.retry_at {
                    self.wb.head_mut().expect("head still present").state = WbState::Idle;
                    true
                } else {
                    false
                }
            }
        }
    }

    // ---- atomic execution at the ROB head ----

    fn step_atomic(&mut self, now: Cycle, image: &mut Memory) -> bool {
        let Some(head) = self.rob.front() else {
            return false;
        };
        if !head.inst.is_atomic() || head.completed() {
            return false;
        }
        if self.atomic.active {
            if self.atomic.waiting_retry && now >= self.atomic.retry_at {
                self.atomic.waiting_retry = false;
                self.atomic.saw_defer = false;
                self.atomic.have_data = false;
                let line = self.atomic.line;
                self.send(
                    self.home(line),
                    Msg::GetX {
                        line,
                        requester: self.id,
                        star: self.atomic.use_star,
                    },
                );
                return true;
            }
            return false;
        }
        // Atomics execute only at the head, with the write buffer drained,
        // to provide their LOCK fence semantics.
        if !self.wb.is_empty() {
            return false;
        }
        let seq = self.rob.front().expect("head checked").seq;
        if !self.operands_ready(seq) {
            return false;
        }
        let (base, offset) = self
            .rob
            .front()
            .expect("head checked")
            .inst
            .mem_operand()
            .expect("atomic is a memory op");
        let base_val = self.operand_value(seq, base);
        let addr = Addr::new(base_val.wrapping_add(offset as u64));
        let line = addr.line();
        if self.l1.peek(line).is_some_and(|s| s.writable()) {
            self.atomic.active = true;
            self.atomic.line = line;
            self.finish_atomic(now, image);
        } else {
            self.atomic = AtomicTxn {
                active: true,
                line,
                use_star: false,
                acks_pending: 0,
                saw_defer: false,
                have_data: false,
                needs_unblock: false,
                waiting_retry: false,
                retry_at: Cycle::ZERO,
            };
            self.send(
                self.home(line),
                Msg::GetX {
                    line,
                    requester: self.id,
                    star: false,
                },
            );
        }
        true
    }

    fn finish_atomic(&mut self, now: Cycle, image: &mut Memory) {
        let head = self.rob.front_mut().expect("atomic finish requires a head");
        debug_assert!(head.inst.is_atomic());
        let seq = head.seq;
        let inst = head.inst;
        let (base, offset) = inst.mem_operand().expect("atomic is a memory op");
        let base_val = self.operand_value(seq, base);
        let addr = Addr::new(base_val.wrapping_add(offset as u64));
        let line = addr.line();
        if let Some(s) = self.l1.get_mut(line) {
            *s = Mesi::Modified;
        } else {
            // The GetX path installs before calling us; the hit path has
            // the line already. Defensive install.
            let _ = self.try_install(line, Mesi::Modified, now);
        }
        let old = image.read(addr);
        let new = match inst {
            Inst::AtomicAdd { src, .. } => old.wrapping_add(self.operand_value(seq, src)),
            Inst::AtomicCas { cmp, src, .. } => {
                if old == self.operand_value(seq, cmp) {
                    self.operand_value(seq, src)
                } else {
                    old
                }
            }
            _ => unreachable!("finish_atomic on non-atomic"),
        };
        image.write(addr, new);
        let head = self.rob.front_mut().expect("head still present");
        head.result = Some(old);
        head.stage = Stage::Completed;
        self.wake_waiters(seq);
        self.atomic = AtomicTxn::default();
        self.stats.incr_id(self.ids.atomics);
        self.check.emit(CheckEvent::WriteFinished {
            core: self.id,
            line,
        });
    }

    // ---- taint propagation (STT) ----

    fn propagate_taint(&mut self) -> bool {
        let mut changed = false;
        // Walk in program order: producers precede consumers, so one pass
        // reaches a fixed point.
        {
            let rob = &self.rob;
            let taint = &mut self.taint;
            for e in rob.iter() {
                if e.inst.is_load() {
                    // A load's own taint is managed at perform/VP time.
                    continue;
                }
                changed |= taint
                    .derive_changed(e.seq, e.srcs.iter().filter_map(|&(_, p)| p))
                    .1;
            }
        }
        // Untaint loads that have reached their VP.
        let aggr = self.aggr;
        for i in 0..self.lq.len() {
            let e = &self.lq[i];
            if e.performed() && self.taint.is_tainted(e.seq) {
                let status = self.vp_status_for(i, &aggr);
                if self.vp_mask.reached(status) {
                    self.taint.clear(e.seq);
                    changed = true;
                }
            }
        }
        changed
    }

    // ---- pinning ----

    /// Number of yet-to-complete stores older than `seq` (in the write
    /// buffer or still in the SQ) — the Section 5.1.2 deadlock-avoidance
    /// count.
    fn older_incomplete_stores(&self, seq: SeqNum) -> usize {
        // The SQ is sorted by seq (dispatch appends in program order), so
        // the count of older stores is a partition point, not a scan.
        let older = self.sq.partition_point(|s| s.seq < seq);
        debug_assert_eq!(older, self.sq.iter().filter(|s| s.seq < seq).count());
        self.wb.len() + older
    }

    /// Non-ordering pin-eligibility conditions for LQ entry `i`.
    fn pin_eligible_base(&self, i: usize, aggr: &Aggregates) -> bool {
        let e = &self.lq[i];
        let Some(line) = e.line() else { return false };
        let status = self.vp_status_base(i, aggr);
        status.clear_except_mcv()
            && aggr.oldest_active_fence.is_none_or(|f| f > e.seq)
            && self.older_incomplete_stores(e.seq) <= self.wb.capacity()
            && self.governor.can_attempt_pin(line).is_ok()
    }

    /// Ordering prefix check: every load older than LQ index `i` is
    /// pinned, MCV-immune, retired, or is the (exempt, issued) oldest
    /// load.
    fn pin_order_ok(&self, i: usize) -> bool {
        let aggressive = !self.cfg.core.conservative_tso;
        self.lq.iter().take(i).enumerate().all(|(j, e)| {
            e.pin == PinState::Pinned
                || e.mcv_immune()
                || (aggressive && j == 0 && (e.performed() || e.waiting_fill))
        })
    }

    fn pin_pass(&mut self, _now: Cycle) -> bool {
        if self.governor.mode() == PinMode::Off {
            return false;
        }
        let mut active = false;
        let aggr = self.aggr;
        for i in 0..self.lq.len() {
            let e = &self.lq[i];
            match e.pin {
                PinState::Pinned => continue,
                // Strict program order: one pin-pending load blocks all
                // younger pins (Section 5.2).
                PinState::Pending => break,
                PinState::Unpinned => {}
            }
            if e.mcv_immune() {
                continue;
            }
            if !self.pin_order_ok(i) {
                break;
            }
            if !self.pin_eligible_base(i, &aggr) {
                // The oldest load is exempt from MCV squashes, so younger
                // loads may pin past it once it has issued; everyone else
                // blocks the frontier.
                if i == 0 && (e.performed() || e.waiting_fill) {
                    continue;
                }
                break;
            }
            let line = self.lq[i].line().expect("eligible load has an address");
            match self.governor.mode() {
                PinMode::Early => {
                    let lq_id = self.lq[i].lq_id;
                    let lq = &self.lq;
                    let live = |id: u64| -> Option<LineAddr> {
                        lq.iter()
                            .find(|x| x.lq_id == id && x.pin == PinState::Pinned)
                            .and_then(|x| x.line())
                    };
                    let governor = &mut self.governor;
                    // try_pin_early mutates governor statistics either way;
                    // treat any attempt as activity so EP-denied windows
                    // are never fast-forwarded over.
                    active = true;
                    match governor.try_pin_early(line, lq_id, &live) {
                        Ok(newly_pinned) => {
                            self.lq[i].pin = PinState::Pinned;
                            self.lq_sync(i);
                            if newly_pinned {
                                self.check.emit(CheckEvent::PinAcquired {
                                    core: self.id,
                                    line,
                                });
                            }
                            continue;
                        }
                        Err(_) => {
                            self.stats.incr_id(self.ids.pin_ep_denied);
                            break;
                        }
                    }
                }
                PinMode::Late => {
                    let e = &self.lq[i];
                    if e.performed()
                        && !e.forwarded
                        && self.l1.peek(line).is_some_and(|s| s.readable())
                    {
                        self.lq[i].pin = PinState::Pinned;
                        self.lq_sync(i);
                        if self.governor.record_pin(line) {
                            self.check.emit(CheckEvent::PinAcquired {
                                core: self.id,
                                line,
                            });
                        }
                        active = true;
                        continue;
                    }
                    if e.waiting_fill {
                        let seq = e.seq;
                        self.lq[i].pin = PinState::Pending;
                        self.lq_sync(i);
                        self.tracer.emit(EventKind::PinPending { seq, line });
                        active = true;
                        break;
                    }
                    // Not yet issued: the issue stage will send it out
                    // pin-pending; stop the frontier here.
                    break;
                }
                PinMode::Off => unreachable!("checked above"),
            }
        }
        active
    }

    // ---- VP status ----

    fn aggregates(&mut self) -> Aggregates {
        // Each term is the oldest still-unresolved instruction of its
        // class. The `agg_*` deques hold the seq-ascending class members;
        // a front entry is popped once its condition clears, which is
        // permanent (completion and address resolution never revert for
        // a given dynamic instruction, and squashes purge the deques
        // eagerly), so the surviving front IS the oldest match.
        while let Some(&seq) = self.agg_ctrl.front() {
            match self.rob_entry(seq) {
                Some(e) if !e.completed() => break,
                _ => self.agg_ctrl.pop_front(),
            };
        }
        while let Some(&seq) = self.agg_fence.front() {
            match self.rob_entry(seq) {
                Some(e) if !e.completed() => break,
                _ => self.agg_fence.pop_front(),
            };
        }
        while let Some(&seq) = self.agg_mem.front() {
            if !self.agg_addr_known(seq) {
                break;
            }
            self.agg_mem.pop_front();
        }
        while let Some(&seq) = self.agg_store.front() {
            if !self.agg_addr_known(seq) {
                break;
            }
            self.agg_store.pop_front();
        }
        let a = Aggregates {
            oldest_unresolved_ctrl: self.agg_ctrl.front().copied(),
            oldest_active_fence: self.agg_fence.front().copied(),
            oldest_unknown_mem_addr: self.agg_mem.front().copied(),
            oldest_unknown_store_addr: self.agg_store.front().copied(),
        };
        debug_assert_eq!(a, self.aggregates_reference());
        a
    }

    /// Whether the memory instruction `seq` may leave the `agg_mem` /
    /// `agg_store` deques: retired, or its address is resolved. Returning
    /// `false` keeps it (matching the reference scan, which treats a
    /// mem instruction with a missing queue entry as address-unknown).
    fn agg_addr_known(&self, seq: SeqNum) -> bool {
        let Some(e) = self.rob_entry(seq) else {
            return true; // retired
        };
        if e.inst.is_atomic() {
            e.completed()
        } else if e.inst.is_load() {
            self.lq_index(seq)
                .is_some_and(|i| self.lq[i].addr.is_some())
        } else {
            self.sq_index(seq)
                .is_some_and(|i| self.sq[i].addr.is_some())
        }
    }

    /// The original full-ROB scan, kept as the debug-build oracle for the
    /// deque-backed [`Core::aggregates`] (via `debug_assert_eq!`; release
    /// builds never call it).
    fn aggregates_reference(&self) -> Aggregates {
        let mut a = Aggregates::default();
        for e in &self.rob {
            if e.inst.is_control() && !e.completed() && a.oldest_unresolved_ctrl.is_none() {
                a.oldest_unresolved_ctrl = Some(e.seq);
            }
            if e.inst.is_fence() && !e.completed() && a.oldest_active_fence.is_none() {
                a.oldest_active_fence = Some(e.seq);
            }
            if e.inst.is_mem() {
                let addr_known = if e.inst.is_atomic() {
                    e.completed()
                } else if e.inst.is_load() {
                    self.lq_index(e.seq)
                        .is_some_and(|i| self.lq[i].addr.is_some())
                } else {
                    self.sq_index(e.seq)
                        .is_some_and(|i| self.sq[i].addr.is_some())
                };
                if !addr_known {
                    if a.oldest_unknown_mem_addr.is_none() {
                        a.oldest_unknown_mem_addr = Some(e.seq);
                    }
                    if e.inst.is_store() && a.oldest_unknown_store_addr.is_none() {
                        a.oldest_unknown_store_addr = Some(e.seq);
                    }
                }
            }
        }
        a
    }

    /// VP conditions other than MCV for LQ entry `i`.
    fn vp_status_base(&self, i: usize, aggr: &Aggregates) -> VpStatus {
        let e = &self.lq[i];
        let seq = e.seq;
        VpStatus {
            ctrl_clear: aggr.oldest_unresolved_ctrl.is_none_or(|s| s > seq),
            alias_clear: aggr.oldest_unknown_store_addr.is_none_or(|s| s > seq),
            exception_clear: e.addr.is_some()
                && aggr.oldest_unknown_mem_addr.is_none_or(|s| s >= seq),
            mcv_clear: false,
        }
    }

    /// Full VP status for LQ entry `i`, including the MCV condition under
    /// the active pinning mode.
    fn vp_status_for(&self, i: usize, aggr: &Aggregates) -> VpStatus {
        let mut status = self.vp_status_base(i, aggr);
        let e = &self.lq[i];
        let is_oldest = i == 0;
        status.mcv_clear = e.mcv_immune()
            || is_oldest
            || match self.governor.mode() {
                PinMode::Off => false,
                PinMode::Early => false, // must actually be pinned
                PinMode::Late => {
                    e.pin == PinState::Pending
                        || (status.clear_except_mcv()
                            && self.pin_order_ok(i)
                            && self.pin_eligible_base(i, aggr))
                }
            };
        status
    }

    /// Trace-only LQ scan: attributes each load's VP progress to the
    /// first still-blocking condition and emits `VpBlocked` on every
    /// blocker transition and `VpClear` once the VP is reached. Runs only
    /// with tracing enabled; the simulated pipeline never reads the
    /// attribution fields.
    fn trace_vp_conditions(&mut self) -> bool {
        if !self.tracer.enabled() {
            return false;
        }
        let mut active = false;
        let aggr = self.aggr;
        for i in 0..self.lq.len() {
            let status = self.vp_status_for(i, &aggr);
            let blocker = self.vp_mask.blocking_condition(status);
            let seq = self.lq[i].seq;
            match blocker {
                Some(b) => {
                    if self.lq[i].vp_blocker != Some(b) {
                        self.lq[i].vp_blocker = Some(b);
                        self.tracer.emit(EventKind::VpBlocked { seq, blocker: b });
                        active = true;
                    }
                    // A cleared load can re-block (e.g. a younger check
                    // after a partial squash); let a later clear re-fire.
                    if self.lq[i].vp_clear_traced {
                        self.lq[i].vp_clear_traced = false;
                        active = true;
                    }
                }
                None => {
                    if !self.lq[i].vp_clear_traced {
                        self.lq[i].vp_clear_traced = true;
                        let last = self.lq[i].vp_blocker.unwrap_or("none");
                        self.tracer.emit(EventKind::VpClear { seq, blocker: last });
                        active = true;
                    }
                }
            }
        }
        active
    }

    /// Checker-only LQ scan mirroring [`Core::vp_status_base`]: reports
    /// each load's base VP-condition bits (control, alias, exception —
    /// the conditions that may only latch, never regress, within a load's
    /// lifetime) so the checker can assert monotone progress. MCV and pin
    /// eligibility legitimately re-block and are excluded. Never
    /// contributes to `tick`'s activity result: with the checker on or
    /// off, cycles, statistics, and traces must stay bit-identical.
    fn check_vp_progress(&mut self) {
        if !self.check.enabled() {
            return;
        }
        let aggr = self.aggr;
        for i in 0..self.lq.len() {
            let status = self.vp_status_base(i, &aggr);
            let mut bits = 0u8;
            if status.ctrl_clear {
                bits |= VP_CTRL;
            }
            if status.alias_clear {
                bits |= VP_ALIAS;
            }
            if status.exception_clear {
                bits |= VP_EXCEPTION;
            }
            if self.lq[i].vp_bits != bits {
                self.lq[i].vp_bits = bits;
                self.check.emit(CheckEvent::VpProgress {
                    core: self.id,
                    seq: self.lq[i].seq.0,
                    bits,
                });
            }
        }
    }

    /// Moves buffered check events into `out`, preserving order.
    pub fn drain_check_events(&mut self, out: &mut Vec<CheckEvent>) {
        self.check.drain_into(out);
    }

    /// Captures this core's coherence-visible state for the checker's
    /// periodic whole-machine scan (SWMR, pin/L1 agreement, CST/CPT
    /// occupancy bounds).
    pub fn check_snapshot(&self) -> CoreSnapshot {
        let l1_lines = self
            .l1
            .iter()
            .filter_map(|(line, &m)| {
                let mode = match m {
                    Mesi::Invalid => return None,
                    Mesi::Shared => LineMode::Shared,
                    Mesi::Exclusive => LineMode::Exclusive,
                    Mesi::Modified => LineMode::Modified,
                };
                Some((line, mode))
            })
            .collect();
        let mut pinned_lines: Vec<_> = self.governor.pinned_lines().collect();
        pinned_lines.sort_unstable();
        CoreSnapshot {
            core: self.id,
            l1_lines,
            pinned_lines,
            cpt_occupancy: self.governor.cpt().occupancy(),
            cpt_capacity: self.governor.cpt().capacity(),
            cst_l1: self.governor.cst_l1_usage(),
            cst_dir: self.governor.cst_dir_usage(),
        }
    }

    // ---- execute completion ----

    fn complete_executing(&mut self, now: Cycle, _image: &mut Memory) -> bool {
        if self.exec_heap.peek().is_none_or(|&Reverse((d, _))| d > now) {
            return false;
        }
        let mut active = false;
        let mut resolutions = std::mem::take(&mut self.scratch_seqs);
        resolutions.clear();
        let mut due = std::mem::take(&mut self.scratch_due);
        due.clear();
        while let Some(&Reverse((d, seq))) = self.exec_heap.peek() {
            if d > now {
                break;
            }
            self.exec_heap.pop();
            due.push((d, seq));
        }
        // Flip in ROB (= seq) order, exactly like the scan this replaces.
        // The heap can hold stale pairs — the instruction was squashed, or
        // the seq was reused and re-issued with a different latency — and
        // duplicates of one pair; flipping only on an exact live match
        // (and at most once, since the first flip leaves `Completed`)
        // drops them all.
        due.sort_unstable_by_key(|&(_, seq)| seq);
        for &(d, seq) in &due {
            let tracer = &mut self.tracer;
            let Some(e) = rob_entry_mut_in(&mut self.rob, seq) else {
                continue;
            };
            if e.stage != (Stage::Executing { done_at: d }) {
                continue;
            }
            e.stage = Stage::Completed;
            active = true;
            tracer.emit(EventKind::Complete { seq });
            if e.inst.is_control() || matches!(e.inst, Inst::Store { .. }) {
                resolutions.push(seq);
            }
            self.wake_waiters(seq);
        }
        due.clear();
        self.scratch_due = due;
        for &seq in &resolutions {
            if self.rob_entry(seq).is_none() {
                continue; // squashed by an earlier resolution this cycle
            }
            let inst = self.rob_entry(seq).expect("checked").inst;
            if inst.is_control() {
                self.resolve_control(seq, now);
            } else {
                self.resolve_store(seq, now);
            }
        }
        resolutions.clear();
        self.scratch_seqs = resolutions;
        active
    }

    fn resolve_control(&mut self, seq: SeqNum, now: Cycle) {
        let e = self.rob_entry(seq).expect("resolving control in ROB");
        let pc = e.pc;
        let inst = e.inst;
        let pred = e
            .pred
            .clone()
            .expect("control instructions carry predictions");
        let (actual_taken, actual_target) = match inst {
            Inst::Branch {
                cond,
                src1,
                src2,
                target,
            } => {
                let a = self.operand_value(seq, src1);
                let b = self.operand_value(seq, src2);
                let taken = cond.eval(a, b);
                (taken, if taken { target } else { pc.next() })
            }
            Inst::Jump { target } | Inst::Call { target } => (true, target),
            Inst::Ret => (true, self.ret_target_at(seq)),
            _ => unreachable!("not a control instruction"),
        };
        let mispredicted = pred.target != actual_target;
        if inst.is_cond_branch() {
            self.bp
                .update_cond(pc, actual_taken, pred.taken, &pred.checkpoint);
        }
        self.bp.update_target(pc, actual_target);
        if mispredicted {
            self.stats.incr_id(self.ids.squash_branch);
            self.bp.recover(
                &pred.checkpoint,
                if inst.is_cond_branch() {
                    Some(actual_taken)
                } else {
                    None
                },
            );
            if inst == Inst::Ret {
                // Re-apply the ret's own pop on the restored RAS.
                let _ = self.bp.pop_return();
            }
            if matches!(inst, Inst::Call { .. }) {
                self.bp.push_return(pc.next());
            }
            self.squash_from(seq.next(), actual_target, "branch", now);
            self.fetch_stalled_until = now + self.cfg.core.mispredict_penalty;
        }
    }

    fn resolve_store(&mut self, seq: SeqNum, now: Cycle) {
        let Some(entry) = self.sq_index(seq).map(|i| &self.sq[i]) else {
            return;
        };
        let Some(addr) = entry.addr else { return };
        let word = addr.raw() >> 3;
        // Memory-order violation: a younger load already performed against
        // stale data (it read memory, or forwarded from a store older than
        // this one). The SoA columns carry the word and performed bits, so
        // the dominant no-match scan never reads an `LqEntry`.
        debug_assert!(self.lq_soa_consistent());
        let victim = self
            .lq_words
            .iter()
            .zip(self.lq_status.iter())
            .enumerate()
            .filter(|&(_, (&w, &s))| w == word && s & LQS_PERFORMED != 0)
            .map(|(i, _)| &self.lq[i])
            .find(|l| l.seq > seq && l.forwarded_from.is_none_or(|f| f < seq));
        debug_assert_eq!(
            victim.map(|v| v.seq),
            self.lq
                .iter()
                .find(|l| {
                    l.seq > seq
                        && l.performed()
                        && l.addr.is_some_and(|a| a.raw() >> 3 == word)
                        // The load is mis-ordered unless it already bound
                        // its value from this store or a younger one;
                        // values from the write buffer, memory, or an
                        // older store are all stale.
                        && l.forwarded_from.is_none_or(|f| f < seq)
                })
                .map(|l| l.seq)
        );
        if let Some(v) = victim {
            let vseq = v.seq;
            debug_assert_eq!(v.pin, PinState::Unpinned, "pinned loads are never squashed");
            let pc = self.rob_entry(vseq).expect("victim load is in ROB").pc;
            self.stats.incr_id(self.ids.squash_alias);
            self.squash_from(vseq, pc, "alias", now);
            self.fetch_stalled_until = now + 3;
        }
    }

    /// Computes the architectural return target for the `Ret` at `seq`:
    /// the committed call stack adjusted by older in-flight calls/rets.
    fn ret_target_at(&self, seq: SeqNum) -> Pc {
        let mut stack = self.arch_call_stack.clone();
        for e in &self.rob {
            if e.seq >= seq {
                break;
            }
            match e.inst {
                Inst::Call { .. } => stack.push(e.pc.next()),
                Inst::Ret => {
                    stack.pop();
                }
                _ => {}
            }
        }
        stack
            .last()
            .copied()
            .unwrap_or_else(|| Pc(self.program.len()))
    }

    // ---- issue ----

    fn issue(&mut self, now: Cycle, image: &mut Memory) -> bool {
        let mut active = false;
        let mut budget = self.cfg.core.issue_width;
        // Non-memory and address-generation issue. Candidates come from
        // `issue_queue`: the program-order sequence numbers of exactly
        // the `ISSUE_CHECK` entries, maintained incrementally at
        // dispatch, wake, squash, and at each visit below — so the pass
        // touches only entries that can possibly make progress, with no
        // per-tick collection scan. Parked entries never appear here —
        // their producer's completion flips them back to `ISSUE_CHECK`
        // via its waiter chain, so a blocked arm is re-run exactly when
        // its operands may have become ready.
        debug_assert!(self.issue_flags_consistent());
        let head = self.rob.front().map_or(SeqNum(0), |e| e.seq);
        let mut qi = 0usize;
        // Unexamined candidates past the issue width stay queued and
        // are revisited next cycle, exactly as a full scan would
        // revisit them.
        while qi < self.issue_queue.len() && budget > 0 {
            let seq = self.issue_queue[qi];
            // A queued (`ISSUE_CHECK`) entry cannot have retired —
            // completion demotes the flag and dequeues first — so its
            // ROB slot is the seq offset from the head, which is stable
            // for the whole pass (no retirement here, and squashes only
            // remove younger entries).
            let idx = (seq.0 - head.0) as usize;
            'entry: {
                let e = &self.rob[idx];
                debug_assert_eq!(e.seq, seq);
                if e.stage != Stage::Dispatched || e.issue_done {
                    // Progressed through another path since the flag was
                    // set; drop the entry from future scans.
                    self.issue_flags[idx] = ISSUE_SKIP;
                    break 'entry;
                }
                if let Some(p) = e.issue_blocked_on {
                    // Defensive: a queued entry's recorded blocker has
                    // completed or retired (that is what woke it). Should
                    // it still be in flight, the arm re-run would be a
                    // guaranteed no-op — skip it.
                    if self.rob_entry(p).is_some_and(|d| !d.completed()) {
                        break 'entry;
                    }
                }
                let inst = e.inst;
                match inst {
                    Inst::Nop => {
                        // No result register, so nothing can be parked on
                        // this entry — completion needs no waiter wake.
                        debug_assert!(self.rob[idx].first_waiter.is_none());
                        self.rob[idx].stage = Stage::Completed;
                        self.issue_flags[idx] = ISSUE_SKIP;
                        active = true;
                    }
                    Inst::Halt => {
                        // Halt completes only at the head so that everything
                        // older retires first.
                        if idx == 0 {
                            debug_assert!(self.rob[idx].first_waiter.is_none());
                            self.rob[idx].stage = Stage::Completed;
                            self.issue_flags[idx] = ISSUE_SKIP;
                            active = true;
                        }
                    }
                    Inst::Mfence => {
                        if idx == 0 && self.wb.is_empty() {
                            debug_assert!(self.rob[idx].first_waiter.is_none());
                            self.rob[idx].stage = Stage::Completed;
                            self.issue_flags[idx] = ISSUE_SKIP;
                            active = true;
                        }
                    }
                    Inst::AtomicAdd { .. } | Inst::AtomicCas { .. } => {
                        // Driven by step_atomic at the head.
                    }
                    Inst::Alu { op, src1, src2, .. } => {
                        let a = match self.operand_or_blocker(seq, src1) {
                            Ok(v) => v,
                            Err(b) => {
                                self.record_issue_block(idx, b);
                                break 'entry;
                            }
                        };
                        let b = match src2 {
                            Operand::Reg(r) => match self.operand_or_blocker(seq, r) {
                                Ok(v) => v,
                                Err(b) => {
                                    self.record_issue_block(idx, b);
                                    break 'entry;
                                }
                            },
                            Operand::Imm(v) => v as u64,
                        };
                        let lat = if op.is_long_latency() {
                            self.cfg.core.mul_latency
                        } else {
                            self.cfg.core.alu_latency
                        };
                        self.rob[idx].result = Some(op.apply(a, b));
                        self.rob[idx].stage = Stage::Executing { done_at: now + lat };
                        self.issue_flags[idx] = ISSUE_SKIP;
                        self.exec_heap.push(Reverse((now + lat, seq)));
                        budget -= 1;
                        active = true;
                    }
                    Inst::Branch { src1, src2, .. } => {
                        let blocked = match self.operand_or_blocker(seq, src1) {
                            Err(b) => Some(b),
                            Ok(_) => self.operand_or_blocker(seq, src2).err(),
                        };
                        if let Some(b) = blocked {
                            self.record_issue_block(idx, b);
                            break 'entry;
                        }
                        self.rob[idx].stage = Stage::Executing { done_at: now + 1 };
                        self.issue_flags[idx] = ISSUE_SKIP;
                        self.exec_heap.push(Reverse((now + 1, seq)));
                        budget -= 1;
                        active = true;
                    }
                    Inst::Jump { .. } | Inst::Call { .. } | Inst::Ret => {
                        self.rob[idx].stage = Stage::Executing { done_at: now + 1 };
                        self.issue_flags[idx] = ISSUE_SKIP;
                        self.exec_heap.push(Reverse((now + 1, seq)));
                        budget -= 1;
                        active = true;
                    }
                    Inst::Load { base, .. } => {
                        // Address generation; the memory access itself is
                        // gated separately below.
                        let Some(lq_idx) = self.lq_index(seq) else {
                            break 'entry;
                        };
                        if self.lq[lq_idx].addr.is_some() {
                            // Addresses are never un-resolved (a mispredicted
                            // load is squashed outright), so this pass is done
                            // with the entry; issue_loads takes it from here.
                            self.rob[idx].issue_done = true;
                            self.issue_flags[idx] = ISSUE_SKIP;
                            break 'entry;
                        }
                        let b = match self.operand_or_blocker(seq, base) {
                            Ok(v) => v,
                            Err(bl) => {
                                self.record_issue_block(idx, bl);
                                break 'entry;
                            }
                        };
                        let offset = match inst {
                            Inst::Load { offset, .. } => offset,
                            _ => unreachable!(),
                        };
                        self.lq[lq_idx].addr = Some(Addr::new(b.wrapping_add(offset as u64)));
                        self.lq_sync(lq_idx);
                        self.lq_promote(lq_idx);
                        self.rob[idx].issue_done = true;
                        self.issue_flags[idx] = ISSUE_SKIP;
                        budget -= 1;
                        active = true;
                    }
                    Inst::Store { src, base, offset } => {
                        // Address generation and data capture are independent
                        // micro-ops, as in real LSUs: the address (which drives
                        // alias resolution and younger loads' VP conditions)
                        // must not wait for the data.
                        let Some(sq_idx) = self.sq_index(seq) else {
                            break 'entry;
                        };
                        let mut progressed = false;
                        if self.sq[sq_idx].addr.is_none() {
                            match self.operand_or_blocker(seq, base) {
                                Ok(b) => {
                                    self.sq[sq_idx].addr =
                                        Some(Addr::new(b.wrapping_add(offset as u64)));
                                    self.resolve_store(seq, now);
                                    progressed = true;
                                }
                                // Data capture below also needs the address,
                                // so the whole arm is blocked on `base`.
                                Err(bl) => self.record_issue_block(idx, bl),
                            }
                        }
                        // `resolve_store` squashes only younger instructions,
                        // never this store; re-find it defensively.
                        if let Some(sq_idx) = self.sq_index(seq) {
                            if self.sq[sq_idx].data.is_none() && self.sq[sq_idx].addr.is_some() {
                                match self.operand_or_blocker(seq, src) {
                                    Ok(d) => {
                                        self.sq[sq_idx].data = Some(d);
                                        progressed = true;
                                    }
                                    Err(bl) => self.record_issue_block(idx, bl),
                                }
                            }
                            if self.sq[sq_idx].resolved() {
                                if let Some(e) = self.rob_entry_mut(seq) {
                                    if e.stage == Stage::Dispatched {
                                        e.stage = Stage::Executing { done_at: now + 1 };
                                        self.issue_flags[idx] = ISSUE_SKIP;
                                        self.exec_heap.push(Reverse((now + 1, seq)));
                                        active = true;
                                    }
                                }
                            }
                        }
                        if progressed {
                            budget -= 1;
                            active = true;
                        }
                    }
                }
            }
            // A store's alias squash above back-purges the queue's
            // younger suffix; the visited store itself is never
            // squashed, but re-read the slot defensively before
            // deciding keep-vs-dequeue.
            if self.issue_queue.get(qi).copied() != Some(seq) {
                continue;
            }
            if self.issue_flags[idx] == ISSUE_CHECK {
                qi += 1;
            } else {
                self.issue_queue.remove(qi);
            }
        }
        active |= self.issue_loads(now, image);
        active
    }

    /// The load-issue pass: applies the defense scheme's policy, performs
    /// store-to-load forwarding, and accesses the L1.
    fn issue_loads(&mut self, now: Cycle, image: &mut Memory) -> bool {
        let mut active = false;
        let mut ports = 3usize; // L1-D read ports (Table 1)
        let aggr = self.aggr;
        // Candidates come from the LQ flag mirror (see `lq_flags`): the
        // scan walks one byte per LQ entry and reads an actual entry
        // only when its flag says the visit could do something. A
        // skipped entry is one this scan would provably no-op on, so
        // visiting the flagged subset is equivalent to the full scan.
        // Unlike the ROB pass there is no candidate queue: in lock-heavy
        // parallel code a large fraction of the LQ stays `LQ_VISIT`
        // (fence- and VP-blocked loads emit stall statistics every
        // cycle), so indirection would cost more than the byte scan.
        debug_assert!(self.lq_flags_consistent());
        // O(1) early-out: with no `LQ_VISIT` entries the byte scan below
        // would no-op without emitting a single statistic, so skipping it
        // entirely is indistinguishable. This is the steady state of a
        // core spinning on performed loads or blocked behind a fill.
        if self.lq_visit_count == 0 {
            return false;
        }
        let mut i = 0usize;
        // Visits can squash an LQ suffix (validation mismatch); the
        // bound is re-read every iteration, so a truncated tail is
        // simply never reached.
        while i < self.lq.len() {
            if ports == 0 {
                break;
            }
            if self.lq_flags[i] != LQ_VISIT {
                i += 1;
                continue;
            }
            'load: {
                let e = &self.lq[i];
                let seq = e.seq;
                if e.invisible && e.performed() && !e.exposing {
                    // InvisiSpec exposure: once the load reaches its VP, issue
                    // the second, visible access to validate the early value.
                    let status = self.vp_status_for(i, &aggr);
                    if self.vp_mask.reached(status) {
                        active |= self.expose_load(i, now, image);
                        ports -= 1;
                    }
                    break 'load;
                }
                if e.performed() || e.waiting_fill {
                    // Terminal for this scan until an explicitly hooked event
                    // (fill arrival, exposure outcome) re-promotes the flag.
                    self.lq_demote(i);
                    break 'load;
                }
                let Some(addr) = e.addr else {
                    // Address generation re-promotes.
                    self.lq_demote(i);
                    break 'load;
                };
                // Loads younger than an active fence must not issue.
                if aggr.oldest_active_fence.is_some_and(|f| f < seq) {
                    break 'load;
                }
                let line = addr.line();
                let status = self.vp_status_for(i, &aggr);
                let vp_reached = self.vp_mask.reached(status);
                let tainted = self.policy.tracks_taint()
                    && self.rob_entry(seq).is_some_and(|d| {
                        self.taint
                            .any_tainted(d.srcs.iter().filter_map(|&(_, p)| p))
                    });
                // Only Delay-On-Miss consults residency to *decide*; for
                // every other scheme the probe is deferred past the issue
                // decision, so a blocked load polling here each cycle
                // never touches the L1 set.
                let mut l1_hit =
                    self.policy.consults_l1() && self.l1.peek(line).is_some_and(|s| s.readable());
                let ctx = LoadContext {
                    vp_reached,
                    l1_hit,
                    address_tainted: tainted,
                };
                if let Err(block) = self.policy.may_issue(ctx) {
                    let key = match block {
                        pl_secure::scheme::IssueBlock::WaitVp => self.ids.stall_vp,
                        pl_secure::scheme::IssueBlock::WaitMissVp => self.ids.stall_dom_miss,
                        pl_secure::scheme::IssueBlock::WaitTaint => self.ids.stall_taint,
                    };
                    self.stats.incr_id(key);
                    break 'load;
                }
                if !self.policy.consults_l1() {
                    l1_hit = self.l1.peek(line).is_some_and(|s| s.readable());
                }
                // Store-to-load forwarding from older SQ entries.
                let word = addr.raw() >> 3;
                let fwd = self
                    .sq
                    .iter()
                    .rev()
                    .filter(|s| s.seq < seq)
                    .find(|s| s.addr.is_some_and(|a| a.raw() >> 3 == word));
                if let Some(store) = fwd {
                    let from = store.seq;
                    match store.data {
                        Some(v) => {
                            self.perform_load(i, v, true, Some(from), now, !vp_reached);
                            ports -= 1;
                            active = true;
                        }
                        None => {
                            // Matching older store without data: wait.
                            self.stats.incr_id(self.ids.stall_store_data);
                        }
                    }
                    break 'load;
                }
                // Write-buffer forwarding (retired but unmerged own stores).
                if let Some(v) = self.wb.forward(addr) {
                    self.perform_load(i, v, true, None, now, !vp_reached);
                    ports -= 1;
                    active = true;
                    break 'load;
                }
                if self.policy.issues_invisibly() && !vp_reached {
                    // Invisible speculation: bind the value without changing
                    // cache state; validate at the VP (exposure). The access
                    // still pays a realistic latency — the L1 hit time when
                    // the line is resident, otherwise a memory round trip.
                    // Without consulting the directory we cannot tell LLC
                    // from DRAM residency, so the miss case is charged the
                    // full DRAM latency: conservative for the invisible
                    // scheme (it can only look worse, never unfairly better).
                    let v = image.read(addr);
                    let latency = if l1_hit {
                        self.cfg.mem.l1d.hit_latency
                    } else {
                        self.cfg.mem.llc_slice.hit_latency
                            + 2 * self.cfg.mem.hop_latency
                            + self.cfg.mem.dram_latency
                    };
                    self.tracer.emit(EventKind::IssueLoad { seq, line, l1_hit });
                    self.perform_load(i, v, false, None, now, false);
                    self.lq[i].invisible = true;
                    self.lq_sync(i);
                    if let Some(d) = self.rob_entry_mut(seq) {
                        // Override the L1-hit deadline `perform_load` set
                        // with the invisible access's latency. The heap
                        // entry `perform_load` pushed carries the old
                        // deadline and is discarded as stale, so the new
                        // deadline needs its own entry.
                        d.stage = Stage::Executing {
                            done_at: now + latency,
                        };
                        self.exec_heap.push(Reverse((now + latency, seq)));
                    }
                    self.stats.incr_id(self.ids.loads_invisible);
                    ports -= 1;
                    active = true;
                    break 'load;
                }
                if l1_hit {
                    self.l1.touch(line);
                    let v = image.read(addr);
                    self.stats.incr_id(self.ids.l1_hits);
                    self.tracer.emit(EventKind::IssueLoad {
                        seq,
                        line,
                        l1_hit: true,
                    });
                    self.perform_load(i, v, false, None, now, !vp_reached);
                    ports -= 1;
                    active = true;
                } else {
                    match self.mshrs.allocate(line, seq, false) {
                        Ok(primary) => {
                            self.stats.incr_id(self.ids.l1_misses);
                            self.tracer.emit(EventKind::IssueLoad {
                                seq,
                                line,
                                l1_hit: false,
                            });
                            self.lq[i].waiting_fill = true;
                            if self.governor.mode() == PinMode::Late
                                && self.lq[i].pin == PinState::Unpinned
                                && status.mcv_clear
                                && !status.clear_except_mcv()
                            {
                                // unreachable in practice; placeholder branch
                            }
                            // Late Pinning: if this load issued under pin
                            // eligibility (not merely as the oldest load),
                            // mark it pin-pending so arrival pins it.
                            if self.governor.mode() == PinMode::Late
                                && status.clear_except_mcv()
                                && self.pin_order_ok(i)
                                && self.pin_eligible_base(i, &aggr)
                            {
                                self.lq[i].pin = PinState::Pending;
                                self.lq_sync(i);
                                self.tracer.emit(EventKind::PinPending { seq, line });
                            }
                            if primary {
                                self.send(
                                    self.home(line),
                                    Msg::GetS {
                                        line,
                                        requester: self.id,
                                    },
                                );
                                self.prefetch_after(line);
                            }
                            ports -= 1;
                            active = true;
                        }
                        Err(_) => {
                            self.stats.incr_id(self.ids.stall_mshr_full);
                        }
                    }
                }
            }
            i += 1;
        }
        active
    }

    /// Issues the InvisiSpec exposure access for LQ entry `i`: an L1 hit
    /// validates immediately; a miss fetches the line and validates on
    /// arrival.
    fn expose_load(&mut self, i: usize, now: Cycle, image: &mut Memory) -> bool {
        let e = &self.lq[i];
        let addr = e.addr.expect("performed load has an address");
        let seq = e.seq;
        let line = addr.line();
        if self.l1.peek(line).is_some_and(|s| s.readable()) {
            self.l1.touch(line);
            self.stats.incr_id(self.ids.l1_hits);
            self.validate_exposed(i, now, image);
            true
        } else {
            match self.mshrs.allocate(line, seq, false) {
                Ok(primary) => {
                    self.stats.incr_id(self.ids.l1_misses);
                    self.lq[i].exposing = true;
                    if primary {
                        self.send(
                            self.home(line),
                            Msg::GetS {
                                line,
                                requester: self.id,
                            },
                        );
                        self.prefetch_after(line);
                    }
                    true
                }
                Err(_) => {
                    self.stats.incr_id(self.ids.stall_mshr_full);
                    false
                }
            }
        }
    }

    /// Compares the invisibly bound value against the now-coherent value;
    /// a mismatch squashes and re-executes the load (InvisiSpec
    /// validation failure).
    fn validate_exposed(&mut self, i: usize, now: Cycle, image: &mut Memory) {
        let e = &self.lq[i];
        let addr = e.addr.expect("exposed load has an address");
        let bound = e.value.expect("exposed load has a bound value");
        let seq = e.seq;
        let current = self.wb.forward(addr).unwrap_or_else(|| image.read(addr));
        if current == bound {
            self.lq[i].invisible = false;
            self.lq[i].exposing = false;
            self.lq_sync(i);
            self.stats.incr_id(self.ids.loads_validated);
        } else {
            let pc = self.rob_entry(seq).expect("load in ROB").pc;
            self.stats.incr_id(self.ids.squash_validation);
            self.squash_from(seq, pc, "validation", now);
        }
    }

    /// Next-line prefetcher (Table 1): on a demand miss, fetch the
    /// following lines too. Prefetches piggyback on the MSHR file with a
    /// sentinel waiter so squashes never wake anything, and are dropped
    /// when MSHRs are scarce — demand misses keep priority.
    fn prefetch_after(&mut self, line: LineAddr) {
        for d in 1..=self.cfg.mem.prefetch_degree {
            if self.mshrs.len() + 2 > self.cfg.mem.l1d.mshr_entries {
                return; // leave headroom for demand misses
            }
            let next = LineAddr::from_line_number(line.raw().wrapping_add(d as u64));
            if self.l1.peek(next).is_some() || self.mshrs.contains(next) || self.wb.has_line(next) {
                continue;
            }
            if self.mshrs.allocate(next, SeqNum(u64::MAX), false) == Ok(true) {
                self.stats.incr_id(self.ids.l1_prefetches);
                self.send(
                    self.home(next),
                    Msg::GetS {
                        line: next,
                        requester: self.id,
                    },
                );
            }
        }
    }

    /// Binds a load's value ("performs" it) and schedules completion.
    /// `forwarded_from` is the in-flight store that supplied the value,
    /// if any (see `LqEntry::forwarded_from`).
    fn perform_load(
        &mut self,
        i: usize,
        value: u64,
        forwarded: bool,
        forwarded_from: Option<SeqNum>,
        now: Cycle,
        pre_vp: bool,
    ) {
        let hit_latency = self.cfg.mem.l1d.hit_latency;
        let e = &mut self.lq[i];
        e.value = Some(value);
        e.performed_at = Some(now);
        e.forwarded = forwarded;
        e.forwarded_from = forwarded_from;
        e.waiting_fill = false;
        let seq = e.seq;
        self.lq_sync(i);
        self.stats.incr_id(self.ids.loads_performed);
        if forwarded {
            self.stats.incr_id(self.ids.loads_forwarded);
        }
        if self.policy.tracks_taint() && pre_vp {
            self.taint.mark(seq);
        }
        self.tracer
            .emit(EventKind::LoadPerformed { seq, forwarded });
        if let Some(d) = self.rob_entry_mut(seq) {
            d.result = Some(value);
            d.stage = Stage::Executing {
                done_at: now + hit_latency,
            };
            self.exec_heap.push(Reverse((now + hit_latency, seq)));
        }
    }

    /// Performs a load that was waiting on a fill that just installed.
    fn perform_waiting_load(&mut self, seq: SeqNum, now: Cycle, image: &mut Memory) {
        let Some(i) = self.lq_index(seq) else {
            return;
        };
        if self.lq[i].exposing {
            // InvisiSpec exposure fill arrived: validate the bound value.
            self.validate_exposed(i, now, image);
            return;
        }
        if self.lq[i].performed() {
            return;
        }
        self.lq[i].waiting_fill = false;
        // Even if forwarding below finds a store still missing its data,
        // the load re-enters the issue pass's per-cycle retry.
        self.lq_promote(i);
        let addr = self.lq[i].addr.expect("waiting load has an address");
        let word = addr.raw() >> 3;
        // An older store may have resolved while the fill was in flight;
        // re-check forwarding so the load binds the correct value.
        let fwd = self
            .sq
            .iter()
            .rev()
            .filter(|s| s.seq < seq)
            .find(|s| s.addr.is_some_and(|a| a.raw() >> 3 == word));
        let aggr = self.aggr;
        let pre_vp = {
            let status = self.vp_status_for(i, &aggr);
            !self.vp_mask.reached(status)
        };
        match fwd {
            Some(store) => {
                let from = store.seq;
                match store.data {
                    Some(v) => self.perform_load(i, v, true, Some(from), now, pre_vp),
                    None => {
                        // Wait for the store's data; the issue pass will
                        // retry forwarding (the line is now resident, so
                        // no new miss).
                    }
                }
            }
            None => {
                let from_wb = self.wb.forward(addr);
                let v = from_wb.unwrap_or_else(|| image.read(addr));
                self.perform_load(i, v, from_wb.is_some(), None, now, pre_vp);
            }
        }
    }

    // ---- operand reading ----

    /// Returns `true` once every source operand of `seq` is ready.
    fn operands_ready(&self, seq: SeqNum) -> bool {
        let Some(e) = self.rob_entry(seq) else {
            return false;
        };
        e.srcs
            .iter()
            .all(|&(r, _)| self.try_operand(seq, r).is_some())
    }

    /// The current value of `reg` as seen by instruction `seq`, or `None`
    /// if its producer has not completed.
    fn try_operand(&self, seq: SeqNum, reg: Reg) -> Option<u64> {
        if reg.is_zero() {
            return Some(0);
        }
        let e = self.rob_entry(seq)?;
        let producer = e.srcs.iter().find(|&&(r, _)| r == reg).map(|&(_, p)| p)?;
        match producer {
            Some(p) => match self.rob_entry(p) {
                Some(prod) if prod.completed() => prod.result,
                Some(_) => None,
                // Producer committed: its value is architectural.
                None => Some(self.regfile[reg.index()]),
            },
            None => Some(self.regfile[reg.index()]),
        }
    }

    /// Memoizes an issue-arm operand failure: the entry is parked (and
    /// skipped by the issue pass) until the recorded blocking producer
    /// completes and wakes it.
    fn record_issue_block(&mut self, idx: usize, blocker: Option<SeqNum>) {
        self.rob[idx].issue_blocked_on = blocker;
        if let Some(p) = blocker {
            let head = self.rob.front().expect("blocked entry in ROB").seq;
            if p >= head {
                // The ROB is seq-dense, so the producer sits at a fixed
                // offset from the head.
                let pidx = (p.0 - head.0) as usize;
                if !self.rob[pidx].completed() {
                    // Park until the producer completes: link this entry
                    // into the producer's waiter chain, whose walk at
                    // completion flips the flag back to `ISSUE_CHECK`.
                    let seq = self.rob[idx].seq;
                    debug_assert!(self.rob[idx].next_waiter.is_none());
                    let prev = self.rob[pidx].first_waiter.replace(seq);
                    self.rob[idx].next_waiter = prev;
                    self.issue_flags[idx] = ISSUE_PARKED;
                    return;
                }
            }
        }
        // No identifiable in-flight producer (retired, or completed with
        // no result): re-examine every cycle — the unmemoized behaviour.
        self.issue_flags[idx] = ISSUE_CHECK;
    }

    /// Wakes every issue-pass waiter parked on `pseq`, which has just
    /// completed: clears the chain and flips each waiter's flag back to
    /// [`ISSUE_CHECK`] so the next issue pass re-runs its arm.
    fn wake_waiters(&mut self, pseq: SeqNum) {
        let Some(front) = self.rob.front() else {
            return;
        };
        let head = front.seq;
        debug_assert!(pseq >= head);
        let pidx = (pseq.0 - head.0) as usize;
        let mut w = self.rob[pidx].first_waiter.take();
        while let Some(ws) = w {
            let widx = (ws.0 - head.0) as usize;
            let waiter = &mut self.rob[widx];
            debug_assert_eq!(waiter.seq, ws);
            debug_assert_eq!(waiter.issue_blocked_on, Some(pseq));
            w = waiter.next_waiter.take();
            self.issue_flags[widx] = ISSUE_CHECK;
            let pos = self.issue_queue.partition_point(|&s| s < ws);
            debug_assert_ne!(self.issue_queue.get(pos).copied(), Some(ws));
            self.issue_queue.insert(pos, ws);
        }
    }

    /// Removes `wseq` (whose chain link is `wnext`) from `pseq`'s waiter
    /// chain; called while squashing `wseq`. The producer is older than
    /// its waiter, so it is still in the ROB when the waiter is popped.
    fn unlink_waiter(&mut self, pseq: SeqNum, wseq: SeqNum, wnext: Option<SeqNum>) {
        let head = self.rob.front().expect("producer outlives waiter").seq;
        let pidx = (pseq.0 - head.0) as usize;
        if self.rob[pidx].first_waiter == Some(wseq) {
            self.rob[pidx].first_waiter = wnext;
            return;
        }
        let mut c = self.rob[pidx].first_waiter;
        while let Some(cs) = c {
            let cidx = (cs.0 - head.0) as usize;
            if self.rob[cidx].next_waiter == Some(wseq) {
                self.rob[cidx].next_waiter = wnext;
                return;
            }
            c = self.rob[cidx].next_waiter;
        }
        debug_assert!(false, "parked entry missing from its producer's chain");
    }

    /// Promotes LQ entry `i` for examination by the load-issue scan.
    fn lq_promote(&mut self, i: usize) {
        if self.lq_flags[i] != LQ_VISIT {
            self.lq_flags[i] = LQ_VISIT;
            self.lq_visit_count += 1;
        }
    }

    /// Demotes LQ entry `i`: the load-issue scan proved it will no-op on
    /// the entry until an explicitly hooked event re-promotes it.
    fn lq_demote(&mut self, i: usize) {
        debug_assert_eq!(self.lq_flags[i], LQ_VISIT);
        self.lq_flags[i] = LQ_SKIP;
        self.lq_visit_count -= 1;
    }

    /// Re-derives LQ entry `i`'s SoA mirror columns after any mutation of
    /// the fields they pack (address, performed, forwarded, invisible,
    /// pin). Every `LqEntry` mutation site calls this.
    fn lq_sync(&mut self, i: usize) {
        let e = &self.lq[i];
        self.lq_words[i] = e.addr.map_or(LQ_NO_WORD, |a| a.raw() >> 3);
        self.lq_status[i] = lq_status_of(e);
    }

    /// Debug oracle: every `LQ_SKIP` entry must satisfy a skip condition
    /// of the load-issue scan (no stats, no side effects), so skipping it
    /// is indistinguishable from visiting it. `LQ_VISIT` may be stale the
    /// other way (a visit that no-ops and demotes) — that is harmless.
    /// Also checks the maintained visit count against a recount.
    fn lq_flags_consistent(&self) -> bool {
        self.lq_flags.len() == self.lq.len()
            && self.lq_visit_count == self.lq_flags.iter().filter(|&&f| f == LQ_VISIT).count()
            && self.lq.iter().zip(self.lq_flags.iter()).all(|(e, &f)| {
                f == LQ_VISIT
                    || e.addr.is_none()
                    || e.waiting_fill
                    || (e.performed() && (!e.invisible || e.exposing))
            })
    }

    /// Debug oracle: the SoA mirror columns must equal a re-derivation
    /// from the LQ entries themselves.
    fn lq_soa_consistent(&self) -> bool {
        self.lq_words.len() == self.lq.len()
            && self.lq_status.len() == self.lq.len()
            && self.lq.iter().enumerate().all(|(i, e)| {
                self.lq_words[i] == e.addr.map_or(LQ_NO_WORD, |a| a.raw() >> 3)
                    && self.lq_status[i] == lq_status_of(e)
            })
    }

    /// Debug oracle: checks the flag mirror against the ROB. `ISSUE_SKIP`
    /// exactly covers entries the issue pass can never act on again, and
    /// a parked entry always names a live, incomplete producer (its wake
    /// fires when that producer completes). Also checks that
    /// `issue_queue` holds exactly the `ISSUE_CHECK` seqs, in program
    /// order (the ROB is seq-sorted, so element-wise equality covers
    /// membership and sortedness at once).
    fn issue_flags_consistent(&self) -> bool {
        self.issue_flags.len() == self.rob.len()
            && self.rob.iter().zip(self.issue_flags.iter()).all(|(e, &f)| {
                if e.stage != Stage::Dispatched || e.issue_done {
                    f == ISSUE_SKIP
                } else if f == ISSUE_PARKED {
                    e.issue_blocked_on
                        .is_some_and(|p| self.rob_entry(p).is_some_and(|d| !d.completed()))
                } else {
                    f == ISSUE_CHECK
                }
            })
            && self.issue_queue.iter().copied().eq(self
                .rob
                .iter()
                .zip(self.issue_flags.iter())
                .filter(|&(_, &f)| f == ISSUE_CHECK)
                .map(|(e, _)| e.seq))
    }

    /// Like [`Core::try_operand`], but a failure also reports which
    /// in-flight producer is blocking (`Err(Some(p))`), so the issue
    /// pass can memoize the entry and skip it until `p` completes.
    /// `Err(None)` means blocked with no identifiable producer (defensive
    /// — should not occur); the caller then re-checks every cycle, which
    /// is exactly the unmemoized behaviour.
    fn operand_or_blocker(&self, seq: SeqNum, reg: Reg) -> Result<u64, Option<SeqNum>> {
        if reg.is_zero() {
            return Ok(0);
        }
        let Some(e) = self.rob_entry(seq) else {
            return Err(None);
        };
        let Some(producer) = e.srcs.iter().find(|&&(r, _)| r == reg).map(|&(_, p)| p) else {
            return Err(None);
        };
        match producer {
            Some(p) => match self.rob_entry(p) {
                Some(prod) if prod.completed() => prod.result.ok_or(Some(p)),
                Some(_) => Err(Some(p)),
                // Producer committed: its value is architectural.
                None => Ok(self.regfile[reg.index()]),
            },
            None => Ok(self.regfile[reg.index()]),
        }
    }

    /// Like [`Core::try_operand`] but panics if unready; used at
    /// resolution time when readiness was already established.
    fn operand_value(&self, seq: SeqNum, reg: Reg) -> u64 {
        self.try_operand(seq, reg)
            .expect("operand ready at resolution")
    }

    // ---- dispatch & fetch ----

    fn dispatch(&mut self, now: Cycle) -> bool {
        let mut active = false;
        for _ in 0..self.cfg.core.fetch_width {
            if self.rob.len() == self.cfg.core.rob_entries {
                self.stats.incr_id(self.ids.stall_rob_full);
                break;
            }
            let Some(front) = self.fetch_buf.front() else {
                break;
            };
            let inst = front.inst;
            if inst.is_load() && !inst.is_atomic() && self.lq.len() == self.cfg.core.lq_entries {
                self.stats.incr_id(self.ids.stall_lq_full);
                break;
            }
            if matches!(inst, Inst::Store { .. }) && self.sq.len() == self.cfg.core.sq_entries {
                self.stats.incr_id(self.ids.stall_sq_full);
                break;
            }
            let f = self.fetch_buf.pop_front().expect("front checked");
            let seq = self.next_seq;
            self.next_seq = seq.next();
            // Record source operands and their producers from the
            // current rename map.
            let (use_regs, n_uses) = f.inst.use_regs_fixed();
            let mut srcs = SrcList::new();
            for &r in &use_regs[..n_uses] {
                srcs.push(
                    r,
                    if r.is_zero() {
                        None
                    } else {
                        self.rename[r.index()]
                    },
                );
            }
            let prev_map = f.inst.def_reg().map(|r| {
                let old = self.rename[r.index()];
                self.rename[r.index()] = Some(seq);
                (r, old)
            });
            if f.inst.is_load() && !f.inst.is_atomic() {
                let lq_id = self.governor.alloc_lq_id();
                self.lq.push(LqEntry::new(seq, lq_id));
                // No address yet: the load-issue pass would skip it;
                // address generation promotes the flag.
                self.lq_flags.push_back(LQ_SKIP);
                // Fresh entry: no address, no status bits set.
                self.lq_words.push(LQ_NO_WORD);
                self.lq_status.push(0);
            }
            if matches!(f.inst, Inst::Store { .. }) {
                self.sq.push(SqEntry::new(seq));
            }
            self.tracer.emit(EventKind::Dispatch {
                seq,
                pc: f.pc.0 as u64,
            });
            self.rob.push_back(DynInst {
                seq,
                pc: f.pc,
                inst: f.inst,
                stage: Stage::Dispatched,
                result: None,
                pred: f.pred,
                prev_map,
                srcs,
                dispatched_at: now,
                // Atomics never progress in the issue pass (step_atomic
                // drives them at the head), so skip them from the start.
                issue_done: f.inst.is_atomic(),
                issue_blocked_on: None,
                first_waiter: None,
                next_waiter: None,
            });
            if f.inst.is_atomic() {
                self.issue_flags.push_back(ISSUE_SKIP);
            } else {
                self.issue_flags.push_back(ISSUE_CHECK);
                // New entries carry the highest seq, so program order
                // is preserved by appending.
                self.issue_queue.push_back(seq);
            }
            if f.inst.is_control() {
                self.agg_ctrl.push_back(seq);
            }
            if f.inst.is_fence() {
                self.agg_fence.push_back(seq);
            }
            if f.inst.is_mem() {
                self.agg_mem.push_back(seq);
            }
            if f.inst.is_store() {
                self.agg_store.push_back(seq);
            }
            active = true;
        }
        active
    }

    fn fetch(&mut self, now: Cycle) -> bool {
        if self.fetch_halted || now < self.fetch_stalled_until {
            return false;
        }
        let mut active = false;
        for _ in 0..self.cfg.core.fetch_width {
            if self.fetch_buf.len() >= FETCH_BUF_CAP {
                break;
            }
            let pc = self.fetch_pc;
            let inst = self.program.fetch(pc);
            let mut next = pc.next();
            let pred = if inst.is_control() {
                let (taken, target, ckpt) = match inst {
                    Inst::Branch { target, .. } => {
                        let (taken, ckpt) = self.bp.predict_cond(pc);
                        (taken, if taken { target } else { pc.next() }, ckpt)
                    }
                    Inst::Jump { target } | Inst::Call { target } => {
                        let ckpt = self.bp.checkpoint();
                        if matches!(inst, Inst::Call { .. }) {
                            self.bp.push_return(pc.next());
                        }
                        (true, target, ckpt)
                    }
                    Inst::Ret => {
                        let ckpt = self.bp.checkpoint();
                        let target = self.bp.pop_return().unwrap_or_else(|| pc.next());
                        (true, target, ckpt)
                    }
                    _ => unreachable!("is_control covers these"),
                };
                next = target;
                Some(PredInfo {
                    taken,
                    target,
                    checkpoint: ckpt,
                })
            } else {
                None
            };
            self.fetch_buf.push_back(Fetched { pc, inst, pred });
            self.fetch_pc = next;
            active = true;
            if inst == Inst::Halt {
                self.fetch_halted = true;
                break;
            }
        }
        active
    }

    // ---- squash ----

    /// Squashes every instruction with `seq >= first_bad` and redirects
    /// fetch to `refetch`. `cause` attributes the squash in the event
    /// trace ("branch", "alias", "validation", "mcv_inv", "mcv_evict").
    fn squash_from(&mut self, first_bad: SeqNum, refetch: Pc, cause: &'static str, now: Cycle) {
        self.tracer.emit(EventKind::Squash {
            first_bad,
            source: cause,
        });
        self.check.emit(CheckEvent::Squashed {
            core: self.id,
            first_bad: first_bad.0,
        });
        while let Some(back) = self.rob.back() {
            if back.seq < first_bad {
                break;
            }
            let e = self.rob.pop_back().expect("back checked");
            let f = self.issue_flags.pop_back().expect("mirror in lockstep");
            if f == ISSUE_PARKED {
                // Keep the waiter chains free of dead links: the chain
                // walk at wake and the dense-offset lookups rely on
                // every linked waiter being live.
                let p = e.issue_blocked_on.expect("parked entries name a producer");
                self.unlink_waiter(p, e.seq, e.next_waiter);
            }
            if let Some((reg, old)) = e.prev_map {
                self.rename[reg.index()] = old;
            }
            self.stats.incr_id(self.ids.squashed_insts);
        }
        debug_assert!(
            self.lq
                .iter()
                .all(|e| e.seq < first_bad || e.pin != PinState::Pinned),
            "a pinned load is being squashed"
        );
        self.lq.retain(|e| e.seq < first_bad);
        // The LQ is seq-sorted, so the retain removed a suffix; the
        // flag and SoA mirrors shrink in lockstep.
        for &f in self.lq_flags.iter().skip(self.lq.len()) {
            if f == LQ_VISIT {
                self.lq_visit_count -= 1;
            }
        }
        self.lq_flags.truncate(self.lq.len());
        self.lq_words.truncate(self.lq.len());
        self.lq_status.truncate(self.lq.len());
        self.sq.retain(|e| e.seq < first_bad);
        // Back-purge the sorted candidate queue: a squash rewinds
        // `next_seq`, so a reused seq must never alias a stale entry.
        while self.issue_queue.back().is_some_and(|&s| s >= first_bad) {
            self.issue_queue.pop_back();
        }
        // Purge the aggregate deques eagerly: squash rewinds `next_seq`,
        // so a reused seq must never alias a stale entry. (`exec_heap`
        // and the issue memos are instead guarded at use.)
        for q in [
            &mut self.agg_ctrl,
            &mut self.agg_fence,
            &mut self.agg_mem,
            &mut self.agg_store,
        ] {
            while q.back().is_some_and(|&s| s >= first_bad) {
                q.pop_back();
            }
        }
        self.mshrs.squash_younger(first_bad);
        self.taint.squash_younger(first_bad);
        self.next_seq = first_bad;
        self.fetch_buf.clear();
        self.fetch_pc = refetch;
        self.fetch_halted = false;
        self.fetch_stalled_until = now + 1;
        self.stats.incr_id(self.ids.squashes);
    }

    // ---- LQ/SQ/ROB lookup ----

    /// Index of the LQ entry for `seq`, if any. The LQ is sorted by seq
    /// (dispatch appends in program order; squash and retire preserve
    /// order), so this is a binary search rather than a scan.
    fn lq_index(&self, seq: SeqNum) -> Option<usize> {
        let found = self.lq.binary_search_by_key(&seq, |e| e.seq).ok();
        debug_assert_eq!(found, self.lq.iter().position(|e| e.seq == seq));
        found
    }

    /// Index of the SQ entry for `seq`, if any. Sorted like the LQ.
    fn sq_index(&self, seq: SeqNum) -> Option<usize> {
        let found = self.sq.binary_search_by_key(&seq, |e| e.seq).ok();
        debug_assert_eq!(found, self.sq.iter().position(|e| e.seq == seq));
        found
    }

    fn rob_entry(&self, seq: SeqNum) -> Option<&DynInst> {
        let head = self.rob.front()?.seq;
        if seq < head {
            return None;
        }
        let idx = (seq.0 - head.0) as usize;
        let e = self.rob.get(idx)?;
        debug_assert_eq!(e.seq, seq, "ROB sequence numbers must be dense");
        Some(e)
    }

    fn rob_entry_mut(&mut self, seq: SeqNum) -> Option<&mut DynInst> {
        let head = self.rob.front()?.seq;
        if seq < head {
            return None;
        }
        let idx = (seq.0 - head.0) as usize;
        self.rob.get_mut(idx)
    }

    // ------------------------------------------------------------------
    // Spin parking: signature anchor, period verification, bulk replay
    // ------------------------------------------------------------------

    /// The spin-signature anchor the machine's detector tracks: the
    /// fetch PC and the next sequence number. A spinning core revisits
    /// the same anchor PC once per iteration with a fixed seq stride;
    /// the detector uses the pair to guess the raw iteration period
    /// before paying for a full [`Core::spin_verify`].
    pub fn spin_anchor(&self) -> (u64, u64) {
        (self.fetch_pc.0 as u64, self.next_seq.0)
    }

    /// Returns `true` when the core holds no in-flight memory-system
    /// transaction: all coherence buffers are empty and no retry timer
    /// is pending. Spin parking is only sound from such a boundary —
    /// everything that remains is pure pipeline state that the period
    /// shift of [`Core::spin_verify`] can reason about, and any future
    /// external influence must arrive as a message (which wakes the
    /// core).
    pub fn spin_ready(&self) -> bool {
        self.outbox.is_empty()
            && self.mshrs.is_empty()
            && self.wb.is_empty()
            && !self.wb_needs_unblock
            && self.pending_installs.is_empty()
            && self.read_retries.is_empty()
            && !self.atomic.active
            && !self.halted
    }

    /// LQ IDs that may still be allocated before the governor's
    /// wraparound-drain boundary. Bounds how many whole periods a
    /// parked spinning core may bulk-replay before it must run live
    /// again (the wrap drain is a global interaction).
    pub fn spin_wrap_budget(&self) -> u64 {
        self.governor.lq_ids_before_wrap()
    }

    /// Checks whether `probe` is exactly `base` advanced by one spin
    /// period of `period` cycles, and if so returns the [`SpinDelta`]
    /// that replays further periods in O(1). `base` is a snapshot of
    /// this core taken `period` cycles ago (its last ticked cycle being
    /// `base_now`); `probe` is the live core now. Consumes `base`: its
    /// state is shifted forward one period in place for the comparison.
    ///
    /// Returns `None` — park nothing, lose nothing but time — unless
    /// every condition for bit-identical replay holds:
    ///
    /// - both endpoints are [`Core::spin_ready`];
    /// - the period is a multiple of [`OCC_SAMPLE_PERIOD`], so every
    ///   period window contains the same occupancy-sample points;
    /// - the core dispatched *and* retired instructions (a fully
    ///   stalled core is the quiet-tick machinery's job, and its
    ///   stale cycle stamps would defeat the uniform shift);
    /// - no load performed invisibly (such loads read the memory image
    ///   directly, which a replay would not repeat);
    /// - the pin set did not change (remote cores read pin counts at
    ///   arbitrary cycles without a message; zero pins acquired plus
    ///   the governor boundary-state equality below implies the counts
    ///   were constant mid-period too, since releases alone could only
    ///   shrink the boundary counts);
    /// - the LQ-ID stride stays within the wraparound budget;
    /// - the branch predictor moved only in loop-predictor confidence
    ///   counters ([`BranchPredictor::spin_delta`]);
    /// - the shifted `base` matches `probe` field for field
    ///   ([`Core::spin_state_eq`]).
    pub fn spin_verify(
        base: &Core,
        probe: &Core,
        base_now: Cycle,
        period: u64,
    ) -> Option<SpinDelta> {
        if period == 0 || !period.is_multiple_of(OCC_SAMPLE_PERIOD) {
            return None;
        }
        if !base.spin_ready() || !probe.spin_ready() {
            return None;
        }
        let dseq = probe.next_seq.0.checked_sub(base.next_seq.0)?;
        let dretired = probe.retired.checked_sub(base.retired)?;
        if dseq == 0 || dretired == 0 {
            return None;
        }
        let dlqid = probe
            .governor
            .next_lq_id()
            .checked_sub(base.governor.next_lq_id())?;
        if dlqid > base.governor.lq_ids_before_wrap() {
            return None;
        }
        let dl1tick = probe.l1.lru_tick().checked_sub(base.l1.lru_tick())?;
        if probe.stats.get_id(probe.ids.loads_invisible)
            != base.stats.get_id(base.ids.loads_invisible)
        {
            return None;
        }
        if probe.governor.stats().get("pin.pins") != base.governor.stats().get("pin.pins") {
            return None;
        }
        // Cheap structural pre-gates: these fields are never shifted, so
        // they must already be bit-equal. Checking them (and the queue
        // shapes) before the predictor tables and the clone below keeps a
        // failed probe at a periodic cadence close to free.
        if base.fetch_pc != probe.fetch_pc
            || base.regfile != probe.regfile
            || base.rob.len() != probe.rob.len()
            || base.lq.len() != probe.lq.len()
            || base.sq.len() != probe.sq.len()
            || base.fetch_buf.len() != probe.fetch_buf.len()
        {
            return None;
        }
        let loop_deltas = BranchPredictor::spin_delta(&base.bp, &probe.bp)?;
        let delta = SpinDelta {
            period,
            dseq,
            dlqid,
            dretired,
            dl1tick,
            core_ctr_before: base.stats.counter_values().to_vec(),
            core_ctr_after: probe.stats.counter_values().to_vec(),
            core_hist_before: base.stats.hist_values(),
            core_hist_after: probe.stats.hist_values(),
            gov_ctr_before: base.governor.stats().counter_values().to_vec(),
            gov_ctr_after: probe.governor.stats().counter_values().to_vec(),
            gov_hist_before: base.governor.stats().hist_values(),
            gov_hist_after: probe.governor.stats().hist_values(),
            loop_deltas,
        };
        let mut shifted = Box::new(base.clone());
        shifted.spin_shift(dseq, period, dlqid, base_now);
        shifted.l1.spin_shift_lru(dl1tick);
        if !Core::spin_state_eq(&shifted, probe) {
            return None;
        }
        Some(delta)
    }

    /// Applies `k` whole spin periods in O(delta) time: statistics and
    /// histograms replay their per-period deltas, the predictor's loop
    /// tables and the L1 recency clock advance, and every sequence
    /// number, cycle stamp, and LQ ID in the pipeline shifts —
    /// bit-identical to running the `k * period` cycles live.
    /// `boundary` is the last cycle this core actually ticked.
    pub fn spin_advance(&mut self, k: u64, d: &SpinDelta, boundary: Cycle) {
        if k == 0 {
            return;
        }
        self.stats
            .replay_counter_delta(&d.core_ctr_before, &d.core_ctr_after, k);
        self.stats
            .replay_hist_delta(&d.core_hist_before, &d.core_hist_after, k);
        self.governor
            .stats_mut()
            .replay_counter_delta(&d.gov_ctr_before, &d.gov_ctr_after, k);
        self.governor
            .stats_mut()
            .replay_hist_delta(&d.gov_hist_before, &d.gov_hist_after, k);
        self.retired += k * d.dretired;
        self.bp.spin_advance(k, &d.loop_deltas);
        self.l1.spin_advance_ticks(d.dl1tick, k);
        self.spin_shift(k * d.dseq, k * d.period, k * d.dlqid, boundary);
    }

    /// Shifts every sequence number, cycle stamp, and LQ ID in the pure
    /// pipeline state forward by the given deltas — producing the state
    /// a periodic spin reaches `dcycle` cycles later. Fields gated
    /// empty by [`Core::spin_ready`] are untouched; the L1 recency
    /// clock is the callers' job (verification shifts one period, bulk
    /// advance applies `k` at once with the same touched-way cutoff).
    ///
    /// `boundary` is the last ticked cycle of the state being shifted:
    /// past-facing stamps (`dispatched_at`, `performed_at`) always
    /// shift — the shifted state describes instructions dispatched one
    /// period later — while `fetch_stalled_until` shifts only when
    /// still in the future, because an already-expired stall window is
    /// reproduced verbatim by the next iteration.
    fn spin_shift(&mut self, dseq: u64, dcycle: u64, dlqid: u64, boundary: Cycle) {
        let sseq = |s: SeqNum| SeqNum(s.0 + dseq);
        let sopt = |s: &mut Option<SeqNum>| {
            if let Some(x) = s.as_mut() {
                *x = SeqNum(x.0 + dseq);
            }
        };
        if self.fetch_stalled_until > boundary {
            self.fetch_stalled_until += dcycle;
        }
        for e in self.rob.iter_mut() {
            e.seq = sseq(e.seq);
            if let Stage::Executing { done_at } = &mut e.stage {
                *done_at += dcycle;
            }
            if let Some((_, p)) = e.prev_map.as_mut() {
                sopt(p);
            }
            for (_, p) in e.srcs.iter_mut() {
                sopt(p);
            }
            e.dispatched_at += dcycle;
            sopt(&mut e.issue_blocked_on);
            sopt(&mut e.first_waiter);
            sopt(&mut e.next_waiter);
        }
        self.next_seq = sseq(self.next_seq);
        for r in self.rename.iter_mut() {
            sopt(r);
        }
        for e in self.lq.iter_mut() {
            e.seq = sseq(e.seq);
            e.lq_id += dlqid;
            if let Some(t) = e.performed_at.as_mut() {
                *t += dcycle;
            }
            sopt(&mut e.forwarded_from);
        }
        for e in self.sq.iter_mut() {
            e.seq = sseq(e.seq);
        }
        // A uniform shift of both tuple components is strictly
        // monotone, so element order is preserved and re-heapifying
        // the shifted elements yields an equivalent heap.
        let shifted: Vec<_> = self
            .exec_heap
            .drain()
            .map(|Reverse((c, s))| Reverse((c + dcycle, sseq(s))))
            .collect();
        self.exec_heap = BinaryHeap::from(shifted);
        for q in [
            &mut self.agg_ctrl,
            &mut self.agg_fence,
            &mut self.agg_mem,
            &mut self.agg_store,
        ] {
            for s in q.iter_mut() {
                *s = SeqNum(s.0 + dseq);
            }
        }
        for s in self.issue_queue.iter_mut() {
            *s = SeqNum(s.0 + dseq);
        }
        sopt(&mut self.aggr.oldest_unresolved_ctrl);
        sopt(&mut self.aggr.oldest_unknown_store_addr);
        sopt(&mut self.aggr.oldest_unknown_mem_addr);
        sopt(&mut self.aggr.oldest_active_fence);
        self.taint.spin_shift(dseq);
        self.governor.spin_advance_lq_ids(dlqid);
    }

    /// Structural equality of the pure pipeline state, used by
    /// [`Core::spin_verify`] after shifting the older snapshot. The
    /// struct is destructured without `..`, so adding a field forces a
    /// decision here. Excluded: statistics and the retired count
    /// (captured as per-period deltas in the [`SpinDelta`]), the branch
    /// predictor (compared separately via
    /// [`BranchPredictor::spin_delta`]), tracer and checker sinks
    /// (spin parking is gated off when either is enabled), per-tick
    /// scratch buffers (empty between ticks), and configuration-derived
    /// fields (identical by construction). The outbox and MSHRs are
    /// required empty on both sides rather than compared — they are
    /// gated empty by [`Core::spin_ready`] anyway.
    pub fn spin_state_eq(base: &Core, probe: &Core) -> bool {
        let Core {
            id: _,
            cfg: _,
            program: _,
            policy: _,
            vp_mask: _,
            bp: _,
            fetch_pc,
            fetch_halted,
            fetch_stalled_until,
            fetch_buf,
            rob,
            next_seq,
            rename,
            regfile,
            lq,
            sq,
            wb,
            wb_needs_unblock,
            l1,
            mshrs,
            pending_installs,
            read_retries,
            governor,
            taint,
            atomic,
            arch_call_stack,
            aggr,
            outbox,
            tracer: _,
            check: _,
            mutation: _,
            mutation_armed,
            stats: _,
            ids: _,
            halted,
            retired: _,
            scratch_installs: _,
            scratch_lines: _,
            scratch_seqs: _,
            scratch_due: _,
            exec_heap,
            agg_ctrl,
            agg_fence,
            agg_mem,
            agg_store,
            issue_flags,
            issue_queue,
            lq_flags,
            lq_visit_count,
            lq_words,
            lq_status,
        } = base;
        *fetch_pc == probe.fetch_pc
            && *fetch_halted == probe.fetch_halted
            && *fetch_stalled_until == probe.fetch_stalled_until
            && *fetch_buf == probe.fetch_buf
            && *rob == probe.rob
            && *next_seq == probe.next_seq
            && *rename == probe.rename
            && *regfile == probe.regfile
            && *lq == probe.lq
            && *sq == probe.sq
            && *wb == probe.wb
            && *wb_needs_unblock == probe.wb_needs_unblock
            && l1.spin_state_eq(&probe.l1)
            && mshrs.is_empty()
            && probe.mshrs.is_empty()
            && *pending_installs == probe.pending_installs
            && *read_retries == probe.read_retries
            && governor.spin_state_eq(&probe.governor)
            && *taint == probe.taint
            && *atomic == probe.atomic
            && *arch_call_stack == probe.arch_call_stack
            && *aggr == probe.aggr
            && outbox.is_empty()
            && probe.outbox.is_empty()
            && *mutation_armed == probe.mutation_armed
            && *halted == probe.halted
            && heap_sorted(exec_heap) == heap_sorted(&probe.exec_heap)
            && *agg_ctrl == probe.agg_ctrl
            && *agg_fence == probe.agg_fence
            && *agg_mem == probe.agg_mem
            && *agg_store == probe.agg_store
            && *issue_flags == probe.issue_flags
            && *issue_queue == probe.issue_queue
            && *lq_flags == probe.lq_flags
            && *lq_visit_count == probe.lq_visit_count
            && *lq_words == probe.lq_words
            && *lq_status == probe.lq_status
    }

    // ------------------------------------------------------------------
    // Checkpoint codec
    // ------------------------------------------------------------------

    /// Encodes the complete simulation state of this core for a
    /// checkpoint spill. Trace and verify sinks are not captured —
    /// spills are gated to runs with both disabled — and per-tick
    /// scratch buffers are empty between ticks by construction.
    pub fn encode_into(&self, e: &mut Enc) {
        self.bp.encode_into(e);
        e.usize(self.fetch_pc.0);
        e.bool(self.fetch_halted);
        e.u64(self.fetch_stalled_until.raw());
        e.usize(self.fetch_buf.len());
        for f in &self.fetch_buf {
            e.usize(f.pc.0);
            encode_opt_pred(e, &f.pred);
        }
        e.usize(self.rob.len());
        for r in &self.rob {
            encode_dyninst(e, r);
        }
        e.u64(self.next_seq.0);
        for r in &self.rename {
            e.opt_u64(r.map(|s| s.0));
        }
        for &v in &self.regfile {
            e.u64(v);
        }
        e.usize(self.lq.len());
        for l in &self.lq {
            encode_lq_entry(e, l);
        }
        e.usize(self.sq.len());
        for s in &self.sq {
            e.u64(s.seq.0);
            e.opt_u64(s.addr.map(|a| a.raw()));
            e.opt_u64(s.data);
        }
        self.wb.encode_into(e);
        e.bool(self.wb_needs_unblock);
        self.l1
            .encode_into(e, &mut |e, m: &Mesi| e.u8(mesi_tag(*m)));
        self.mshrs.encode_into(e);
        e.usize(self.pending_installs.len());
        for p in &self.pending_installs {
            e.u64(p.line.raw());
            e.u8(mesi_tag(p.state));
            match p.action {
                InstallAction::ReadFill => e.u8(0),
                InstallAction::WriteMerge { needs_unblock } => {
                    e.u8(1);
                    e.bool(needs_unblock);
                }
                InstallAction::AtomicFinish { needs_unblock } => {
                    e.u8(2);
                    e.bool(needs_unblock);
                }
            }
            e.u64(p.retry_at.raw());
        }
        e.usize(self.read_retries.len());
        for &(c, l) in &self.read_retries {
            e.u64(c.raw());
            e.u64(l.raw());
        }
        self.governor.encode_into(e);
        self.taint.encode_into(e);
        e.bool(self.atomic.active);
        e.u64(self.atomic.line.raw());
        e.bool(self.atomic.use_star);
        e.usize(self.atomic.acks_pending);
        e.bool(self.atomic.saw_defer);
        e.bool(self.atomic.have_data);
        e.bool(self.atomic.needs_unblock);
        e.bool(self.atomic.waiting_retry);
        e.u64(self.atomic.retry_at.raw());
        e.usize(self.arch_call_stack.len());
        for pc in &self.arch_call_stack {
            e.usize(pc.0);
        }
        e.opt_u64(self.aggr.oldest_unresolved_ctrl.map(|s| s.0));
        e.opt_u64(self.aggr.oldest_unknown_store_addr.map(|s| s.0));
        e.opt_u64(self.aggr.oldest_unknown_mem_addr.map(|s| s.0));
        e.opt_u64(self.aggr.oldest_active_fence.map(|s| s.0));
        e.usize(self.outbox.len());
        for (dst, msg) in &self.outbox {
            dst.encode_into(e);
            msg.encode_into(e);
        }
        e.bool(self.mutation_armed);
        self.stats.encode_into(e);
        e.bool(self.halted);
        e.u64(self.retired);
        e.usize(self.issue_flags.len());
        for &f in &self.issue_flags {
            e.u8(f);
        }
        e.usize(self.lq_flags.len());
        for &f in &self.lq_flags {
            e.u8(f);
        }
        for q in [
            &self.agg_ctrl,
            &self.agg_fence,
            &self.agg_mem,
            &self.agg_store,
        ] {
            e.usize(q.len());
            for s in q {
                e.u64(s.0);
            }
        }
        let heap = heap_sorted(&self.exec_heap);
        e.usize(heap.len());
        for (c, s) in heap {
            e.u64(c.raw());
            e.u64(s.0);
        }
    }

    /// Overlays state encoded by [`Core::encode_into`] onto a freshly
    /// constructed core with the same id, configuration, and program.
    /// Derived structures that the encoding omits — the issue-candidate
    /// queue, the LQ SoA mirror, and the visit count — are rebuilt from
    /// the decoded state.
    pub fn decode_overlay(&mut self, d: &mut Dec<'_>) -> Result<(), String> {
        self.bp.decode_overlay(d)?;
        self.fetch_pc = Pc(d.usize()?);
        self.fetch_halted = d.bool()?;
        self.fetch_stalled_until = Cycle(d.u64()?);
        self.fetch_buf.clear();
        for _ in 0..d.usize()? {
            let pc = Pc(d.usize()?);
            let pred = self.decode_opt_pred(d)?;
            self.fetch_buf.push_back(Fetched {
                pc,
                inst: self.program.fetch(pc),
                pred,
            });
        }
        self.rob.clear();
        for _ in 0..d.usize()? {
            let di = self.decode_dyninst(d)?;
            self.rob.push_back(di);
        }
        self.next_seq = SeqNum(d.u64()?);
        for r in self.rename.iter_mut() {
            *r = d.opt_u64()?.map(SeqNum);
        }
        for v in self.regfile.iter_mut() {
            *v = d.u64()?;
        }
        self.lq.clear();
        for _ in 0..d.usize()? {
            let l = decode_lq_entry(d)?;
            self.lq.push(l);
        }
        self.sq.clear();
        for _ in 0..d.usize()? {
            self.sq.push(SqEntry {
                seq: SeqNum(d.u64()?),
                addr: d.opt_u64()?.map(Addr::new),
                data: d.opt_u64()?,
            });
        }
        self.wb.decode_overlay(d)?;
        self.wb_needs_unblock = d.bool()?;
        self.l1.decode_overlay(d, &mut |d| mesi_from(d.u8()?))?;
        self.mshrs.decode_overlay(d)?;
        self.pending_installs.clear();
        for _ in 0..d.usize()? {
            let line = LineAddr::from_line_number(d.u64()?);
            let state = mesi_from(d.u8()?)?;
            let action = match d.u8()? {
                0 => InstallAction::ReadFill,
                1 => InstallAction::WriteMerge {
                    needs_unblock: d.bool()?,
                },
                2 => InstallAction::AtomicFinish {
                    needs_unblock: d.bool()?,
                },
                t => return Err(format!("core: bad install-action tag {t}")),
            };
            let retry_at = Cycle(d.u64()?);
            self.pending_installs.push(PendingInstall {
                line,
                state,
                action,
                retry_at,
            });
        }
        self.read_retries.clear();
        for _ in 0..d.usize()? {
            let c = Cycle(d.u64()?);
            let l = LineAddr::from_line_number(d.u64()?);
            self.read_retries.push((c, l));
        }
        self.governor.decode_overlay(d)?;
        self.taint.decode_overlay(d)?;
        self.atomic = AtomicTxn {
            active: d.bool()?,
            line: LineAddr::from_line_number(d.u64()?),
            use_star: d.bool()?,
            acks_pending: d.usize()?,
            saw_defer: d.bool()?,
            have_data: d.bool()?,
            needs_unblock: d.bool()?,
            waiting_retry: d.bool()?,
            retry_at: Cycle(d.u64()?),
        };
        self.arch_call_stack.clear();
        for _ in 0..d.usize()? {
            self.arch_call_stack.push(Pc(d.usize()?));
        }
        self.aggr = Aggregates {
            oldest_unresolved_ctrl: d.opt_u64()?.map(SeqNum),
            oldest_unknown_store_addr: d.opt_u64()?.map(SeqNum),
            oldest_unknown_mem_addr: d.opt_u64()?.map(SeqNum),
            oldest_active_fence: d.opt_u64()?.map(SeqNum),
        };
        self.outbox.clear();
        for _ in 0..d.usize()? {
            let dst = NodeId::decode(d)?;
            let msg = Msg::decode(d)?;
            self.outbox.push((dst, msg));
        }
        self.mutation_armed = d.bool()?;
        self.stats.decode_overlay(d)?;
        self.halted = d.bool()?;
        self.retired = d.u64()?;
        self.issue_flags.clear();
        for _ in 0..d.usize()? {
            let f = d.u8()?;
            if f > ISSUE_PARKED {
                return Err(format!("core: bad issue flag {f}"));
            }
            self.issue_flags.push_back(f);
        }
        if self.issue_flags.len() != self.rob.len() {
            return Err(format!(
                "core: {} issue flags for {} ROB entries",
                self.issue_flags.len(),
                self.rob.len()
            ));
        }
        self.lq_flags.clear();
        for _ in 0..d.usize()? {
            let f = d.u8()?;
            if f > LQ_VISIT {
                return Err(format!("core: bad LQ flag {f}"));
            }
            self.lq_flags.push_back(f);
        }
        if self.lq_flags.len() != self.lq.len() {
            return Err(format!(
                "core: {} LQ flags for {} LQ entries",
                self.lq_flags.len(),
                self.lq.len()
            ));
        }
        for q in [
            &mut self.agg_ctrl,
            &mut self.agg_fence,
            &mut self.agg_mem,
            &mut self.agg_store,
        ] {
            q.clear();
        }
        for i in 0..4 {
            let n = d.usize()?;
            for _ in 0..n {
                let s = SeqNum(d.u64()?);
                match i {
                    0 => self.agg_ctrl.push_back(s),
                    1 => self.agg_fence.push_back(s),
                    2 => self.agg_mem.push_back(s),
                    _ => self.agg_store.push_back(s),
                }
            }
        }
        self.exec_heap.clear();
        for _ in 0..d.usize()? {
            let c = Cycle(d.u64()?);
            let s = SeqNum(d.u64()?);
            self.exec_heap.push(Reverse((c, s)));
        }
        // Rebuild the derived structures the encoding omits.
        self.issue_queue.clear();
        for (r, &f) in self.rob.iter().zip(self.issue_flags.iter()) {
            if f == ISSUE_CHECK {
                self.issue_queue.push_back(r.seq);
            }
        }
        self.lq_visit_count = self.lq_flags.iter().filter(|&&f| f == LQ_VISIT).count();
        self.lq_words.clear();
        self.lq_status.clear();
        for i in 0..self.lq.len() {
            self.lq_words.push(LQ_NO_WORD);
            self.lq_status.push(0);
            self.lq_sync(i);
        }
        debug_assert!(self.lq_flags_consistent());
        debug_assert!(self.lq_soa_consistent());
        Ok(())
    }

    fn decode_opt_pred(&self, d: &mut Dec<'_>) -> Result<Option<PredInfo>, String> {
        if !d.bool()? {
            return Ok(None);
        }
        let taken = d.bool()?;
        let target = Pc(d.usize()?);
        let ghr = d.u64()?;
        let mut ras = Ras::new(self.cfg.core.ras_entries);
        ras.decode_overlay(d)?;
        Ok(Some(PredInfo {
            taken,
            target,
            checkpoint: Checkpoint { ghr, ras },
        }))
    }

    fn decode_dyninst(&self, d: &mut Dec<'_>) -> Result<DynInst, String> {
        let seq = SeqNum(d.u64()?);
        let pc = Pc(d.usize()?);
        let stage = match d.u8()? {
            0 => Stage::Dispatched,
            1 => Stage::Executing {
                done_at: Cycle(d.u64()?),
            },
            2 => Stage::Completed,
            t => return Err(format!("core: bad stage tag {t}")),
        };
        let result = d.opt_u64()?;
        let pred = self.decode_opt_pred(d)?;
        let prev_map = if d.bool()? {
            let r = decode_reg(d)?;
            Some((r, d.opt_u64()?.map(SeqNum)))
        } else {
            None
        };
        let mut srcs = SrcList::new();
        let n = d.u8()?;
        if n > 3 {
            return Err(format!(
                "core: {n} encoded sources exceed the inline capacity"
            ));
        }
        for _ in 0..n {
            let r = decode_reg(d)?;
            srcs.push(r, d.opt_u64()?.map(SeqNum));
        }
        Ok(DynInst {
            seq,
            pc,
            inst: self.program.fetch(pc),
            stage,
            result,
            pred,
            prev_map,
            srcs,
            dispatched_at: Cycle(d.u64()?),
            issue_done: d.bool()?,
            issue_blocked_on: d.opt_u64()?.map(SeqNum),
            first_waiter: d.opt_u64()?.map(SeqNum),
            next_waiter: d.opt_u64()?.map(SeqNum),
        })
    }
}

/// Dense-seq ROB lookup usable while another field of `Core` is borrowed.
fn rob_entry_mut_in(rob: &mut VecDeque<DynInst>, seq: SeqNum) -> Option<&mut DynInst> {
    let head = rob.front()?.seq;
    if seq < head {
        return None;
    }
    let idx = (seq.0 - head.0) as usize;
    rob.get_mut(idx)
}

/// The verified per-period effect of one spin iteration window,
/// produced by [`Core::spin_verify`] and replayed `k` periods at a time
/// by [`Core::spin_advance`]. The public stride fields let the machine
/// compute how many whole periods fit before a timed boundary (LQ-ID
/// wraparound, watchdog); the statistic snapshots stay private to the
/// replay machinery.
#[derive(Debug, Clone)]
pub struct SpinDelta {
    /// Verified period length in cycles (a multiple of
    /// [`OCC_SAMPLE_PERIOD`]).
    pub period: u64,
    /// Sequence numbers consumed per period.
    pub dseq: u64,
    /// LQ IDs allocated per period.
    pub dlqid: u64,
    /// Instructions retired per period.
    pub dretired: u64,
    /// L1 recency-clock advances per period.
    pub dl1tick: u64,
    core_ctr_before: Vec<u64>,
    core_ctr_after: Vec<u64>,
    core_hist_before: Vec<(u64, u64)>,
    core_hist_after: Vec<(u64, u64)>,
    gov_ctr_before: Vec<u64>,
    gov_ctr_after: Vec<u64>,
    gov_hist_before: Vec<(u64, u64)>,
    gov_hist_after: Vec<(u64, u64)>,
    loop_deltas: Vec<(usize, u32)>,
}

/// The exec-completion heap as a sorted vector, for order-insensitive
/// comparison and canonical encoding. The heap's *contents* are what
/// matter — two heaps with the same elements pop identically.
fn heap_sorted(h: &BinaryHeap<Reverse<(Cycle, SeqNum)>>) -> Vec<(Cycle, SeqNum)> {
    let mut v: Vec<(Cycle, SeqNum)> = h.iter().map(|&Reverse(t)| t).collect();
    v.sort_unstable();
    v
}

fn mesi_tag(m: Mesi) -> u8 {
    match m {
        Mesi::Invalid => 0,
        Mesi::Shared => 1,
        Mesi::Exclusive => 2,
        Mesi::Modified => 3,
    }
}

fn mesi_from(t: u8) -> Result<Mesi, String> {
    match t {
        0 => Ok(Mesi::Invalid),
        1 => Ok(Mesi::Shared),
        2 => Ok(Mesi::Exclusive),
        3 => Ok(Mesi::Modified),
        t => Err(format!("core: bad MESI tag {t}")),
    }
}

fn decode_reg(d: &mut Dec<'_>) -> Result<Reg, String> {
    Reg::new(d.u8()?).map_err(|e| e.to_string())
}

fn encode_opt_pred(e: &mut Enc, p: &Option<PredInfo>) {
    match p {
        None => e.bool(false),
        Some(p) => {
            e.bool(true);
            e.bool(p.taken);
            e.usize(p.target.0);
            e.u64(p.checkpoint.ghr);
            p.checkpoint.ras.encode_into(e);
        }
    }
}

fn encode_dyninst(e: &mut Enc, r: &DynInst) {
    e.u64(r.seq.0);
    e.usize(r.pc.0);
    match r.stage {
        Stage::Dispatched => e.u8(0),
        Stage::Executing { done_at } => {
            e.u8(1);
            e.u64(done_at.raw());
        }
        Stage::Completed => e.u8(2),
    }
    e.opt_u64(r.result);
    encode_opt_pred(e, &r.pred);
    match r.prev_map {
        None => e.bool(false),
        Some((reg, old)) => {
            e.bool(true);
            e.u8(reg.index() as u8);
            e.opt_u64(old.map(|s| s.0));
        }
    }
    e.u8(r.srcs.len() as u8);
    for &(reg, p) in r.srcs.iter() {
        e.u8(reg.index() as u8);
        e.opt_u64(p.map(|s| s.0));
    }
    e.u64(r.dispatched_at.raw());
    e.bool(r.issue_done);
    e.opt_u64(r.issue_blocked_on.map(|s| s.0));
    e.opt_u64(r.first_waiter.map(|s| s.0));
    e.opt_u64(r.next_waiter.map(|s| s.0));
}

fn encode_lq_entry(e: &mut Enc, l: &LqEntry) {
    e.u64(l.seq.0);
    e.u64(l.lq_id);
    e.opt_u64(l.addr.map(|a| a.raw()));
    e.opt_u64(l.performed_at.map(|c| c.raw()));
    e.opt_u64(l.value);
    e.bool(l.forwarded);
    e.opt_u64(l.forwarded_from.map(|s| s.0));
    e.u8(match l.pin {
        PinState::Unpinned => 0,
        PinState::Pending => 1,
        PinState::Pinned => 2,
    });
    e.bool(l.waiting_fill);
    e.bool(l.invisible);
    e.bool(l.exposing);
    e.u8(l.vp_bits);
}

/// Decodes an LQ entry. The trace-attribution fields (`vp_blocker`,
/// `vp_clear_traced`) are reset rather than encoded: checkpoint spills
/// are gated to runs with tracing and verification disabled, where both
/// stay at their defaults.
fn decode_lq_entry(d: &mut Dec<'_>) -> Result<LqEntry, String> {
    let seq = SeqNum(d.u64()?);
    let lq_id = d.u64()?;
    let addr = d.opt_u64()?.map(Addr::new);
    let performed_at = d.opt_u64()?.map(Cycle);
    let value = d.opt_u64()?;
    let forwarded = d.bool()?;
    let forwarded_from = d.opt_u64()?.map(SeqNum);
    let pin = match d.u8()? {
        0 => PinState::Unpinned,
        1 => PinState::Pending,
        2 => PinState::Pinned,
        t => return Err(format!("core: bad pin tag {t}")),
    };
    Ok(LqEntry {
        seq,
        lq_id,
        addr,
        performed_at,
        value,
        forwarded,
        forwarded_from,
        pin,
        waiting_fill: d.bool()?,
        invisible: d.bool()?,
        exposing: d.bool()?,
        vp_bits: d.u8()?,
        vp_blocker: None,
        vp_clear_traced: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_isa::{AluOp, BranchCond, ProgramBuilder};

    fn r(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    /// An endless spin-wait with a short data-dependent body: the shape
    /// the machine's detector targets. Register state must be periodic
    /// for the spin to verify, so the counter is masked (`r1` cycles
    /// through 0..=7) and the "flag test" result is always zero — a
    /// monotonically counting loop is *not* a spin and must be (and is,
    /// see the rejection test) left to run live.
    fn spin_program() -> Arc<Program> {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.addi(r(1), Reg::ZERO, 0);
        b.bind(top).unwrap();
        b.addi(r(1), r(1), 1);
        b.alu(AluOp::And, r(1), r(1), 7i64);
        b.alu(AluOp::Xor, r(3), r(1), r(1));
        b.branch(BranchCond::Eq, r(3), Reg::ZERO, top);
        Arc::new(b.build().unwrap())
    }

    /// Runs the live core through cycles `[from, to)`.
    fn run_cycles(core: &mut Core, image: &mut Memory, from: u64, to: u64) {
        for c in from..to {
            core.tick(Cycle(c), image);
        }
    }

    /// Finds the first OCC-aligned period at which the warmed-up spin
    /// core verifies, returning the delta, the live core, and the cycle
    /// bounds (base snapshot cycle, probe cycle).
    fn verify_spin() -> (Core, Memory, SpinDelta, u64, u64) {
        let cfg = MachineConfig::default_single_core();
        let mut core = Core::new(CoreId(0), &cfg, spin_program());
        let mut image = Memory::new();
        let warm = 8192u64;
        run_cycles(&mut core, &mut image, 0, warm);
        let base = Box::new(core.clone());
        let base_now = Cycle(warm - 1);
        for c in warm..warm + 4096 {
            core.tick(Cycle(c), &mut image);
            let period = c - warm + 1;
            if !period.is_multiple_of(OCC_SAMPLE_PERIOD) {
                continue;
            }
            if let Some(d) = Core::spin_verify(&base, &core, base_now, period) {
                return (core, image, d, warm - 1, c);
            }
        }
        panic!("spin loop failed to verify within 4096 cycles");
    }

    #[test]
    fn spin_loop_verifies_at_an_aligned_period() {
        let (_, _, delta, _, _) = verify_spin();
        assert!(delta.period.is_multiple_of(OCC_SAMPLE_PERIOD));
        assert!(delta.dseq > 0);
        assert!(delta.dretired > 0);
        assert_eq!(delta.dlqid, 0, "a memory-free spin allocates no LQ IDs");
    }

    #[test]
    fn spin_advance_matches_live_execution_exactly() {
        let (mut live, mut image, delta, _, probe_now) = verify_spin();
        let k = 7u64;
        let mut bulk = live.clone();
        bulk.spin_advance(k, &delta, Cycle(probe_now));
        run_cycles(
            &mut live,
            &mut image,
            probe_now + 1,
            probe_now + 1 + k * delta.period,
        );
        assert!(
            Core::spin_state_eq(&bulk, &live),
            "bulk-advanced state diverged from live execution"
        );
        assert_eq!(bulk.retired(), live.retired());
        assert_eq!(
            bulk.stats().counter_values(),
            live.stats().counter_values(),
            "counter replay diverged"
        );
        assert_eq!(
            bulk.stats().hist_values(),
            live.stats().hist_values(),
            "histogram replay diverged"
        );
        assert_eq!(
            bulk.governor().stats().counter_values(),
            live.governor().stats().counter_values()
        );
        assert_eq!(
            bulk.governor().stats().hist_values(),
            live.governor().stats().hist_values()
        );
        // The advanced core keeps running identically to the live one.
        let resume = probe_now + 1 + k * delta.period;
        let mut image2 = Memory::new();
        run_cycles(&mut bulk, &mut image2, resume, resume + 100);
        run_cycles(&mut live, &mut image, resume, resume + 100);
        assert!(Core::spin_state_eq(&bulk, &live));
        assert_eq!(bulk.stats().counter_values(), live.stats().counter_values());
    }

    #[test]
    fn spin_verify_rejects_misaligned_and_zero_periods() {
        let cfg = MachineConfig::default_single_core();
        let core = Core::new(CoreId(0), &cfg, spin_program());
        let base = core.clone();
        assert!(Core::spin_verify(&base, &core, Cycle(0), 0).is_none());
        assert!(Core::spin_verify(&base, &core, Cycle(0), 31).is_none());
    }

    #[test]
    fn spin_verify_rejects_a_counting_loop() {
        // An unbounded counter looks like a spin to a PC-anchor
        // detector but its register file is never periodic; replaying
        // it would freeze the count. It must never verify.
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.addi(r(1), Reg::ZERO, 0);
        b.bind(top).unwrap();
        b.addi(r(1), r(1), 1);
        b.branch(BranchCond::Eq, Reg::ZERO, Reg::ZERO, top);
        let program = Arc::new(b.build().unwrap());
        let cfg = MachineConfig::default_single_core();
        let mut core = Core::new(CoreId(0), &cfg, program);
        let mut image = Memory::new();
        let warm = 8192u64;
        run_cycles(&mut core, &mut image, 0, warm);
        let base = Box::new(core.clone());
        for c in warm..warm + 1024 {
            core.tick(Cycle(c), &mut image);
            let period = c - warm + 1;
            if !period.is_multiple_of(OCC_SAMPLE_PERIOD) {
                continue;
            }
            assert!(
                Core::spin_verify(&base, &core, Cycle(warm - 1), period).is_none(),
                "a counting loop must not verify (period {period})"
            );
        }
    }

    #[test]
    fn spin_verify_rejects_an_unchanged_core() {
        // Identical endpoints mean nothing dispatched or retired: that
        // is a stalled core, not a spinning one.
        let (live, _, delta, _, _) = verify_spin();
        assert!(Core::spin_verify(&live.clone(), &live, Cycle(0), delta.period).is_none());
    }

    #[test]
    fn codec_round_trip_is_bit_exact_and_resumable() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        let skip = b.new_label();
        b.addi(r(1), Reg::ZERO, 64);
        b.addi(r(2), Reg::ZERO, 0);
        b.bind(top).unwrap();
        b.alu(AluOp::And, r(3), r(1), 1i64);
        b.branch(BranchCond::Eq, r(3), Reg::ZERO, skip);
        b.addi(r(2), r(2), 1);
        b.bind(skip).unwrap();
        b.addi(r(1), r(1), -1);
        b.branch(BranchCond::Ne, r(1), Reg::ZERO, top);
        let program = Arc::new(b.build().unwrap());

        let cfg = MachineConfig::default_single_core();
        let mut core = Core::new(CoreId(0), &cfg, Arc::clone(&program));
        let mut image = Memory::new();
        // Stop mid-flight so the ROB, fetch buffer, and predictor all
        // hold interesting state.
        run_cycles(&mut core, &mut image, 0, 57);

        let mut e = Enc::new();
        core.encode_into(&mut e);
        let bytes = e.into_bytes();

        let mut fresh = Core::new(CoreId(0), &cfg, program);
        let mut d = Dec::new(&bytes);
        fresh.decode_overlay(&mut d).expect("decode");
        d.finish().expect("trailing bytes");

        let mut e2 = Enc::new();
        fresh.encode_into(&mut e2);
        assert_eq!(bytes, e2.into_bytes(), "re-encoding must be bit-exact");
        assert!(Core::spin_state_eq(&core, &fresh));
        assert_eq!(core.retired(), fresh.retired());

        // Both cores must continue identically to completion.
        let mut image2 = Memory::new();
        for c in 57..50_000 {
            if core.halted() && fresh.halted() {
                break;
            }
            core.tick(Cycle(c), &mut image);
            fresh.tick(Cycle(c), &mut image2);
        }
        assert!(core.halted() && fresh.halted());
        assert_eq!(core.reg(r(2)), 32);
        assert_eq!(core.reg(r(2)), fresh.reg(r(2)));
        assert_eq!(core.retired(), fresh.retired());
        assert_eq!(
            core.stats().counter_values(),
            fresh.stats().counter_values()
        );
        assert_eq!(core.stats().hist_values(), fresh.stats().hist_values());
    }

    #[test]
    fn codec_round_trip_of_a_fresh_core() {
        let cfg = MachineConfig::default_single_core();
        let core = Core::new(CoreId(0), &cfg, spin_program());
        let mut e = Enc::new();
        core.encode_into(&mut e);
        let bytes = e.into_bytes();
        let mut fresh = Core::new(CoreId(0), &cfg, spin_program());
        let mut d = Dec::new(&bytes);
        fresh.decode_overlay(&mut d).expect("decode");
        d.finish().expect("trailing bytes");
        assert!(Core::spin_state_eq(&core, &fresh));
    }
}
