//! Dynamic (in-flight) instruction state: ROB, load queue, and store
//! queue entry types.

use pl_base::{Addr, Cycle, SeqNum};
use pl_isa::{Inst, Pc, Reg};
use pl_predictor::Checkpoint;
use pl_secure::PinState;

/// Execution progress of a ROB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Renamed and in the ROB, waiting for operands or a functional unit.
    Dispatched,
    /// Executing; the result becomes available at the recorded cycle.
    Executing {
        /// Completion cycle.
        done_at: Cycle,
    },
    /// Result available; waiting to retire (or for memory, in the LQ/SQ).
    Completed,
}

/// A control instruction's prediction record, checked at resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredInfo {
    /// Predicted direction (always `true` for unconditional control).
    pub taken: bool,
    /// Predicted next PC.
    pub target: Pc,
    /// Predictor state snapshot for recovery.
    pub checkpoint: Checkpoint,
}

/// Fixed-capacity source-operand list: each `(register, producer)` pair
/// records a source and the in-flight instruction that produces it
/// (`None` when the value was already architectural at dispatch).
///
/// No instruction shape has more than three sources, so the list is
/// inline — dispatching an instruction allocates nothing. Derefs to a
/// slice, so call sites iterate it like the `Vec` it replaced.
/// Slots at or past `len` are only ever written by `push` (which bumps
/// `len` over them), so they stay at their `Default` value and the
/// derived `PartialEq` over the whole array is equivalent to comparing
/// the live prefixes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SrcList {
    items: [(Reg, Option<SeqNum>); 3],
    len: u8,
}

impl SrcList {
    /// Creates an empty list.
    pub fn new() -> SrcList {
        SrcList::default()
    }

    /// Appends a source pair.
    ///
    /// # Panics
    ///
    /// Panics if the list already holds three sources.
    pub fn push(&mut self, reg: Reg, producer: Option<SeqNum>) {
        self.items[self.len as usize] = (reg, producer);
        self.len += 1;
    }
}

impl std::ops::Deref for SrcList {
    type Target = [(Reg, Option<SeqNum>)];
    fn deref(&self) -> &[(Reg, Option<SeqNum>)] {
        &self.items[..self.len as usize]
    }
}

impl std::ops::DerefMut for SrcList {
    fn deref_mut(&mut self) -> &mut [(Reg, Option<SeqNum>)] {
        &mut self.items[..self.len as usize]
    }
}

/// One reorder-buffer entry.
#[derive(Debug, Clone, PartialEq)]
pub struct DynInst {
    /// Program-order sequence number (dense within the ROB).
    pub seq: SeqNum,
    /// Fetch PC.
    pub pc: Pc,
    /// The decoded instruction.
    pub inst: Inst,
    /// Execution progress.
    pub stage: Stage,
    /// Result value for register-writing instructions.
    pub result: Option<u64>,
    /// For control instructions: the prediction to validate.
    pub pred: Option<PredInfo>,
    /// The rename mapping this instruction displaced, restored on squash.
    pub prev_map: Option<(Reg, Option<SeqNum>)>,
    /// Source operands with their producers at rename time (used for
    /// operand reads and STT taint propagation). A `None` producer means
    /// the value was already architectural at dispatch.
    pub srcs: SrcList,
    /// Cycle the entry was dispatched (for occupancy statistics).
    pub dispatched_at: Cycle,
    /// Issue-pass memo: this entry will make no further progress in the
    /// non-memory issue pass (load address generated, atomic driven by
    /// the commit-side state machine). Purely an iteration-skip hint;
    /// never consulted by architectural logic.
    pub issue_done: bool,
    /// Issue-pass memo: the in-flight producer that last blocked this
    /// entry's operands. The issue pass skips the entry while that
    /// producer is still in the ROB and incomplete — a re-run of the
    /// arm is guaranteed to be a no-op until then.
    pub issue_blocked_on: Option<SeqNum>,
    /// Head of this entry's issue-pass waiter chain: the most recently
    /// parked instruction blocked on this entry's result. The chain is
    /// walked (and cleared) when this entry completes, waking each
    /// waiter for re-examination. Intrusive and allocation-free; links
    /// are always live because a waiter cannot retire before its
    /// producer, and squash unlinks eagerly.
    pub first_waiter: Option<SeqNum>,
    /// Next link in the waiter chain this entry is parked on
    /// (single-membership: an entry waits on at most one producer).
    pub next_waiter: Option<SeqNum>,
}

impl DynInst {
    /// Returns `true` once the result (if any) is available to consumers.
    pub fn completed(&self) -> bool {
        self.stage == Stage::Completed
    }

    /// Returns `true` while the instruction occupies a functional unit.
    pub fn executing(&self) -> bool {
        matches!(self.stage, Stage::Executing { .. })
    }
}

/// One load-queue entry.
#[derive(Debug, Clone, PartialEq)]
pub struct LqEntry {
    /// Owning instruction.
    pub seq: SeqNum,
    /// Extended LQ ID tag (Section 6.2).
    pub lq_id: u64,
    /// Effective address, once generated.
    pub addr: Option<Addr>,
    /// Cycle the value was bound ("performed"), if it has been.
    pub performed_at: Option<Cycle>,
    /// The bound value.
    pub value: Option<u64>,
    /// `true` if the value came from store-to-load forwarding (the load
    /// never touched the cache, so it cannot suffer an MCV).
    pub forwarded: bool,
    /// The store-queue entry the value was forwarded from, when it came
    /// from an in-flight store. `None` for write-buffer/memory values.
    /// Memory-order-violation detection compares this against a resolving
    /// store: the load is mis-ordered if it bound its value from anything
    /// older than that store.
    pub forwarded_from: Option<SeqNum>,
    /// Pinning progress.
    pub pin: PinState,
    /// `true` while an L1 fill for this load is outstanding.
    pub waiting_fill: bool,
    /// `true` if the value was bound *invisibly* (InvisiSpec-class
    /// defense): no cache state changed, and the load must be validated
    /// with an exposed access at its VP before it may retire.
    pub invisible: bool,
    /// `true` while the exposure/validation access is in flight.
    pub exposing: bool,
    /// Base VP-condition bits (`pl_base::verify::VP_*`) last reported to
    /// the invariant checker; stays zero when the checker is off.
    pub vp_bits: u8,
    /// Last VP condition observed blocking this load, for trace
    /// attribution. `None` until the tracer's VP scan first sees the load.
    pub vp_blocker: Option<&'static str>,
    /// `true` once the tracer has emitted this load's `VpClear` event.
    pub vp_clear_traced: bool,
}

impl LqEntry {
    /// Creates an entry for a newly dispatched load.
    pub fn new(seq: SeqNum, lq_id: u64) -> LqEntry {
        LqEntry {
            seq,
            lq_id,
            addr: None,
            performed_at: None,
            value: None,
            forwarded: false,
            forwarded_from: None,
            pin: PinState::Unpinned,
            waiting_fill: false,
            invisible: false,
            exposing: false,
            vp_bits: 0,
            vp_blocker: None,
            vp_clear_traced: false,
        }
    }

    /// Returns `true` once the value is bound.
    pub fn performed(&self) -> bool {
        self.performed_at.is_some()
    }

    /// The line read, once the address is known.
    pub fn line(&self) -> Option<pl_base::LineAddr> {
        self.addr.map(|a| a.line())
    }

    /// Returns `true` if this load can no longer suffer an MCV on its own
    /// merits: it is pinned, or its value came from forwarding.
    pub fn mcv_immune(&self) -> bool {
        self.pin == PinState::Pinned || (self.forwarded && self.performed())
    }
}

/// One store-queue entry (pre-retirement store).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqEntry {
    /// Owning instruction.
    pub seq: SeqNum,
    /// Effective address, once generated.
    pub addr: Option<Addr>,
    /// Data to store, once read from the source register.
    pub data: Option<u64>,
}

impl SqEntry {
    /// Creates an entry for a newly dispatched store.
    pub fn new(seq: SeqNum) -> SqEntry {
        SqEntry {
            seq,
            addr: None,
            data: None,
        }
    }

    /// Returns `true` once both address and data are known.
    pub fn resolved(&self) -> bool {
        self.addr.is_some() && self.data.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lq_entry_lifecycle() {
        let mut e = LqEntry::new(SeqNum(3), 7);
        assert!(!e.performed());
        assert!(e.line().is_none());
        assert!(!e.mcv_immune());
        e.addr = Some(Addr::new(0x88));
        assert_eq!(e.line(), Some(Addr::new(0x88).line()));
        e.performed_at = Some(Cycle(10));
        e.value = Some(42);
        assert!(e.performed());
        e.forwarded = true;
        assert!(e.mcv_immune());
    }

    #[test]
    fn pinned_entry_is_mcv_immune() {
        let mut e = LqEntry::new(SeqNum(1), 0);
        e.pin = PinState::Pinned;
        assert!(e.mcv_immune());
    }

    #[test]
    fn sq_entry_resolution() {
        let mut e = SqEntry::new(SeqNum(5));
        assert!(!e.resolved());
        e.addr = Some(Addr::new(8));
        assert!(!e.resolved());
        e.data = Some(1);
        assert!(e.resolved());
    }

    #[test]
    fn src_list_pushes_and_derefs() {
        let mut s = SrcList::new();
        assert!(s.is_empty());
        let r1 = Reg::new(1).unwrap();
        let r2 = Reg::new(2).unwrap();
        s.push(r1, None);
        s.push(r2, Some(SeqNum(4)));
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], (r1, None));
        assert_eq!(s.iter().filter_map(|&(_, p)| p).count(), 1);
    }

    #[test]
    fn stage_predicates() {
        let mut d = DynInst {
            seq: SeqNum(0),
            pc: Pc(0),
            inst: Inst::Nop,
            stage: Stage::Dispatched,
            result: None,
            pred: None,
            prev_map: None,
            srcs: SrcList::new(),
            dispatched_at: Cycle(0),
            issue_done: false,
            issue_blocked_on: None,
            first_waiter: None,
            next_waiter: None,
        };
        assert!(!d.completed() && !d.executing());
        d.stage = Stage::Executing { done_at: Cycle(3) };
        assert!(d.executing());
        d.stage = Stage::Completed;
        assert!(d.completed());
    }
}
