//! Determinism and exactly-once guarantees of the parallel sweep runner.
//!
//! The figure binaries must print the same numbers whatever `--threads`
//! is, and the Unsafe baseline must be simulated exactly once per
//! workload per sweep. Both are load-bearing acceptance criteria, so
//! they get end-to-end coverage here on a small config×workload matrix.

use pl_base::{DefenseScheme, MachineConfig, TraceConfig};
use pl_bench::{
    extension_matrix, run_workload, sweep_cpis, sweep_results, unsafe_config, BaselineCache,
    SweepJob,
};
use pl_workloads::{spec_suite, Scale, Workload};

fn small_suite() -> Vec<Workload> {
    spec_suite(Scale::Test)
        .into_iter()
        .filter(|w| ["alu_dense", "hot_reuse", "stream"].contains(&w.name.as_str()))
        .collect()
}

/// Bit-level equality, not approximate: the parallel path must not even
/// reorder floating-point reductions relative to serial.
fn assert_bits_equal(serial: &[Vec<f64>], parallel: &[Vec<f64>], threads: usize) {
    assert_eq!(
        serial.len(),
        parallel.len(),
        "job count diverged at {threads} threads"
    );
    for (s_row, p_row) in serial.iter().zip(parallel) {
        assert_eq!(
            s_row.len(),
            p_row.len(),
            "row length diverged at {threads} threads"
        );
        for (s, p) in s_row.iter().zip(p_row) {
            assert_eq!(
                s.to_bits(),
                p.to_bits(),
                "CPI diverged at {threads} threads: {s} vs {p}"
            );
        }
    }
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let base = MachineConfig::default_single_core();
    let workloads = small_suite();
    let jobs: Vec<SweepJob> = extension_matrix(&base, DefenseScheme::Fence)
        .into_iter()
        .map(|(_, cfg)| (cfg, None))
        .collect();
    let serial = sweep_cpis(&jobs, &workloads, 1);
    for threads in [2, 4, 8, 16] {
        let parallel = sweep_cpis(&jobs, &workloads, threads);
        assert_bits_equal(&serial, &parallel, threads);
    }
}

#[test]
fn fast_forward_sweeps_stay_bit_identical_across_threads() {
    // Fast-forwarding idle cycles must not perturb sweep numbers — not
    // against a single-stepped run, and not under parallel scheduling.
    // This is the regression fence for the idle-cycle fast-forward: a
    // drift anywhere in the replayed stats shows up as a CPI bit flip.
    let workloads = small_suite();
    let jobs = |ff: bool| -> Vec<SweepJob> {
        let mut base = MachineConfig::default_single_core();
        base.fast_forward = ff;
        extension_matrix(&base, DefenseScheme::Fence)
            .into_iter()
            .map(|(_, cfg)| (cfg, None))
            .collect()
    };
    let single_stepped = sweep_cpis(&jobs(false), &workloads, 1);
    let ff_serial = sweep_cpis(&jobs(true), &workloads, 1);
    assert_bits_equal(&single_stepped, &ff_serial, 1);
    for threads in [4, 8] {
        let ff_parallel = sweep_cpis(&jobs(true), &workloads, threads);
        assert_bits_equal(&single_stepped, &ff_parallel, threads);
    }
}

#[test]
fn baseline_runs_exactly_once_per_workload() {
    let base = MachineConfig::default_single_core();
    let workloads = small_suite();
    let cache = BaselineCache::new(&base);
    cache.prime(&workloads, 4);
    assert_eq!(cache.baseline_runs(), workloads.len());
    // A whole extension matrix of normalized queries must not re-run any
    // baseline (the bug this cache replaced: one baseline re-simulation
    // per defended configuration).
    for (_, cfg) in extension_matrix(&base, DefenseScheme::Fence) {
        for w in &workloads {
            let n = cache.normalized_cpi(&cfg, w);
            assert!(n.is_finite() && n > 0.0);
        }
    }
    assert_eq!(cache.baseline_runs(), workloads.len());
    // And the baseline normalizes to exactly 1.0 against itself.
    let w = &workloads[0];
    let n = cache.normalized_cpi(&unsafe_config(&base), w);
    assert!((n - 1.0).abs() < 1e-12);
}

#[test]
fn traced_sweep_is_bit_identical_across_threads() {
    // The merged event log is part of the RunResult; like the CPIs it
    // must not depend on how the sweep was scheduled. TraceLog equality
    // is structural (every record, in order), so this is bit-level.
    let mut base = MachineConfig::default_single_core();
    base.trace = TraceConfig::enabled();
    let workloads: Vec<Workload> = small_suite().into_iter().take(2).collect();
    let jobs: Vec<SweepJob> = vec![
        (unsafe_config(&base), None),
        (
            extension_matrix(&base, DefenseScheme::Fence).remove(2).1,
            None,
        ), // EP
    ];
    let serial = sweep_results(&jobs, &workloads, 1);
    for threads in [2, 8] {
        let parallel = sweep_results(&jobs, &workloads, threads);
        for (s_row, p_row) in serial.iter().zip(&parallel) {
            for (s, p) in s_row.iter().zip(p_row) {
                let s_log = s.trace.as_ref().expect("traced run");
                let p_log = p.trace.as_ref().expect("traced run");
                assert!(!s_log.records.is_empty(), "traced run produced events");
                assert_eq!(s_log, p_log, "trace diverged at {threads} threads");
            }
        }
    }
}

#[test]
fn chrome_trace_export_is_parseable_with_monotonic_timestamps() {
    use std::collections::HashMap;

    let mut cfg = unsafe_config(&MachineConfig::default_single_core());
    cfg.trace = TraceConfig::enabled();
    let w = small_suite().remove(0);
    let res = run_workload(&cfg, &w);
    let log = res.trace.expect("traced run");
    let text = log.chrome_trace();

    let root = pl_trace::json::parse(&text).expect("exporter emits valid JSON");
    let events = root
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array present");
    assert!(!events.is_empty());

    // Per (pid, tid) track, "X" event timestamps must be monotonically
    // non-decreasing — the contract chrome://tracing relies on.
    let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();
    let mut durable = 0usize;
    for e in events {
        let ph = e.get("ph").and_then(|v| v.as_str()).expect("event has ph");
        if ph != "X" {
            continue;
        }
        durable += 1;
        let pid = e.get("pid").and_then(|v| v.as_f64()).expect("pid") as u64;
        let tid = e.get("tid").and_then(|v| v.as_f64()).expect("tid") as u64;
        let ts = e.get("ts").and_then(|v| v.as_f64()).expect("ts");
        if let Some(&prev) = last_ts.get(&(pid, tid)) {
            assert!(
                ts >= prev,
                "track ({pid},{tid}) went backwards: {prev} -> {ts}"
            );
        }
        last_ts.insert((pid, tid), ts);
    }
    assert!(durable > 0, "export contains duration events");
}

#[test]
fn priming_across_thread_counts_is_deterministic() {
    let base = MachineConfig::default_single_core();
    let workloads = small_suite();
    let serial = BaselineCache::new(&base);
    serial.prime(&workloads, 1);
    let parallel = BaselineCache::new(&base);
    parallel.prime(&workloads, 4);
    for w in &workloads {
        assert_eq!(
            serial.cpi(w).to_bits(),
            parallel.cpi(w).to_bits(),
            "{}",
            w.name
        );
    }
}
