//! Determinism and exactly-once guarantees of the parallel sweep runner.
//!
//! The figure binaries must print the same numbers whatever `--threads`
//! is, and the Unsafe baseline must be simulated exactly once per
//! workload per sweep. Both are load-bearing acceptance criteria, so
//! they get end-to-end coverage here on a small config×workload matrix.

use pl_base::{DefenseScheme, MachineConfig};
use pl_bench::{
    extension_matrix, sweep_cpis, unsafe_config, BaselineCache, SweepJob,
};
use pl_workloads::{spec_suite, Scale, Workload};

fn small_suite() -> Vec<Workload> {
    spec_suite(Scale::Test)
        .into_iter()
        .filter(|w| ["alu_dense", "hot_reuse", "stream"].contains(&w.name.as_str()))
        .collect()
}

/// Bit-level equality, not approximate: the parallel path must not even
/// reorder floating-point reductions relative to serial.
fn assert_bits_equal(serial: &[Vec<f64>], parallel: &[Vec<f64>], threads: usize) {
    assert_eq!(serial.len(), parallel.len(), "job count diverged at {threads} threads");
    for (s_row, p_row) in serial.iter().zip(parallel) {
        assert_eq!(s_row.len(), p_row.len(), "row length diverged at {threads} threads");
        for (s, p) in s_row.iter().zip(p_row) {
            assert_eq!(
                s.to_bits(),
                p.to_bits(),
                "CPI diverged at {threads} threads: {s} vs {p}"
            );
        }
    }
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let base = MachineConfig::default_single_core();
    let workloads = small_suite();
    let jobs: Vec<SweepJob> = extension_matrix(&base, DefenseScheme::Fence)
        .into_iter()
        .map(|(_, cfg)| (cfg, None))
        .collect();
    let serial = sweep_cpis(&jobs, &workloads, 1);
    for threads in [2, 4, 8, 16] {
        let parallel = sweep_cpis(&jobs, &workloads, threads);
        assert_bits_equal(&serial, &parallel, threads);
    }
}

#[test]
fn baseline_runs_exactly_once_per_workload() {
    let base = MachineConfig::default_single_core();
    let workloads = small_suite();
    let cache = BaselineCache::new(&base);
    cache.prime(&workloads, 4);
    assert_eq!(cache.baseline_runs(), workloads.len());
    // A whole extension matrix of normalized queries must not re-run any
    // baseline (the bug this cache replaced: one baseline re-simulation
    // per defended configuration).
    for (_, cfg) in extension_matrix(&base, DefenseScheme::Fence) {
        for w in &workloads {
            let n = cache.normalized_cpi(&cfg, w);
            assert!(n.is_finite() && n > 0.0);
        }
    }
    assert_eq!(cache.baseline_runs(), workloads.len());
    // And the baseline normalizes to exactly 1.0 against itself.
    let w = &workloads[0];
    let n = cache.normalized_cpi(&unsafe_config(&base), w);
    assert!((n - 1.0).abs() < 1e-12);
}

#[test]
fn priming_across_thread_counts_is_deterministic() {
    let base = MachineConfig::default_single_core();
    let workloads = small_suite();
    let serial = BaselineCache::new(&base);
    serial.prime(&workloads, 1);
    let parallel = BaselineCache::new(&base);
    parallel.prime(&workloads, 4);
    for w in &workloads {
        assert_eq!(serial.cpi(w).to_bits(), parallel.cpi(w).to_bits(), "{}", w.name);
    }
}
