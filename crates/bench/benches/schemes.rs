//! Criterion end-to-end benchmark: simulated-machine wall time per
//! defense configuration on one representative kernel. The interesting
//! output is the *relative simulated cycle counts* (reported by the
//! figure binaries); this bench tracks the host-side cost so regressions
//! in simulator performance are caught by `cargo bench`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use pl_base::{DefenseScheme, MachineConfig, PinMode, PinnedLoadsConfig};
use pl_machine::Machine;
use pl_workloads::{spec_suite, Scale};

fn bench_schemes(c: &mut Criterion) {
    let workload = spec_suite(Scale::Test)
        .into_iter()
        .find(|w| w.name == "hot_reuse")
        .expect("suite contains hot_reuse");
    let mut group = c.benchmark_group("simulate/hot_reuse");
    group.sample_size(10);
    for (label, scheme, pin) in [
        ("unsafe", DefenseScheme::Unsafe, PinMode::Off),
        ("fence_comp", DefenseScheme::Fence, PinMode::Off),
        ("fence_lp", DefenseScheme::Fence, PinMode::Late),
        ("fence_ep", DefenseScheme::Fence, PinMode::Early),
        ("dom_ep", DefenseScheme::Dom, PinMode::Early),
        ("stt_ep", DefenseScheme::Stt, PinMode::Early),
    ] {
        let mut cfg = MachineConfig::default_single_core();
        cfg.defense = scheme;
        cfg.pinned_loads = PinnedLoadsConfig::with_mode(pin);
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let mut m = Machine::new(&cfg).unwrap();
                    workload.install(&mut m);
                    m
                },
                |mut m| black_box(m.run(100_000_000).unwrap()),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
