//! End-to-end benchmark: simulated-machine wall time per defense
//! configuration on one representative kernel, on the in-tree
//! `pl_bench::timing` harness. The interesting output is the *relative
//! simulated cycle counts* (reported by the figure binaries); this bench
//! tracks the host-side cost so regressions in simulator performance are
//! caught by `cargo bench`.
//!
//! Run with `cargo bench -p pl-bench --bench schemes`; writes
//! `results/bench_schemes.json`.

use pl_base::{DefenseScheme, MachineConfig, PinMode, PinnedLoadsConfig};
use pl_bench::timing::TimingHarness;
use pl_machine::Machine;
use pl_workloads::{spec_suite, Scale};

fn main() {
    let workload = spec_suite(Scale::Test)
        .into_iter()
        .find(|w| w.name == "hot_reuse")
        .expect("suite contains hot_reuse");
    let mut h = TimingHarness::new("schemes");
    for (label, scheme, pin) in [
        (
            "simulate/hot_reuse/unsafe",
            DefenseScheme::Unsafe,
            PinMode::Off,
        ),
        (
            "simulate/hot_reuse/fence_comp",
            DefenseScheme::Fence,
            PinMode::Off,
        ),
        (
            "simulate/hot_reuse/fence_lp",
            DefenseScheme::Fence,
            PinMode::Late,
        ),
        (
            "simulate/hot_reuse/fence_ep",
            DefenseScheme::Fence,
            PinMode::Early,
        ),
        (
            "simulate/hot_reuse/dom_ep",
            DefenseScheme::Dom,
            PinMode::Early,
        ),
        (
            "simulate/hot_reuse/stt_ep",
            DefenseScheme::Stt,
            PinMode::Early,
        ),
    ] {
        let mut cfg = MachineConfig::default_single_core();
        cfg.defense = scheme;
        cfg.pinned_loads = PinnedLoadsConfig::with_mode(pin);
        h.bench_with_setup(
            label,
            || {
                let mut m = Machine::new(&cfg).unwrap();
                workload.install(&mut m);
                m
            },
            |mut m| m.run(100_000_000).unwrap(),
        );
    }
    h.finish().expect("write benchmark report");
}
