//! Criterion microbenchmarks of the simulator's building blocks: cache
//! lookups, TAGE predictions, CST pin checks, NoC routing, and whole-
//! machine simulation throughput. These guard the simulator's own
//! performance (cycles simulated per second), which the figure harnesses
//! depend on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use pl_base::{Addr, CacheConfig, CoreId, Cycle, LineAddr, MachineConfig, SimRng};
use pl_isa::{Pc, ProgramBuilder, Reg};
use pl_machine::Machine;
use pl_mem::{Cache, Mesi, Msg, NodeId, Noc};
use pl_predictor::BranchPredictor;
use pl_secure::Cst;

fn bench_cache(c: &mut Criterion) {
    let cfg = CacheConfig { size_bytes: 32 * 1024, ways: 8, hit_latency: 2, mshr_entries: 16 };
    c.bench_function("cache/lookup_hit", |b| {
        let mut cache: Cache<Mesi> = Cache::new(&cfg);
        for i in 0..256u64 {
            cache.insert(Addr::new(i * 64).line(), Mesi::Shared, |_, _| true).unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 256;
            black_box(cache.get(Addr::new(i * 64).line()).copied())
        });
    });
    c.bench_function("cache/insert_evict", |b| {
        let mut cache: Cache<Mesi> = Cache::new(&cfg);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(cache.insert(Addr::new(i * 64).line(), Mesi::Exclusive, |_, _| true))
        });
    });
}

fn bench_predictor(c: &mut Criterion) {
    c.bench_function("tage/predict_update", |b| {
        let mut bp = BranchPredictor::new(4096, 16);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let pc = Pc((i % 64) as usize);
            let taken = (i / 64) % 3 == 0;
            let (pred, ckpt) = bp.predict_cond(pc);
            bp.update_cond(pc, taken, pred, &ckpt);
        });
    });
}

fn bench_cst(c: &mut Criterion) {
    c.bench_function("cst/try_pin", |b| {
        let mut rng = SimRng::new(1);
        let lines: Vec<LineAddr> =
            (0..1024).map(|_| Addr::new(rng.next_u64() & 0xfff_ffc0).line()).collect();
        let mut cst = Cst::finite(40, 2);
        let live = |_id: u64| -> Option<LineAddr> { None };
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % lines.len();
            black_box(cst.try_pin(i as u64 % 64, lines[i], i as u64, &live))
        });
    });
}

fn bench_noc(c: &mut Criterion) {
    c.bench_function("noc/send_deliver", |b| {
        b.iter_batched(
            || Noc::new(4, 2, 1),
            |mut noc| {
                for i in 0..64u64 {
                    noc.send(
                        Cycle(i),
                        NodeId::Core(CoreId((i % 8) as usize)),
                        NodeId::Slice(((i + 3) % 8) as usize),
                        Msg::GetS { line: Addr::new(i * 64).line(), requester: CoreId(0) },
                    );
                }
                black_box(noc.deliver(Cycle(1000)))
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_machine_throughput(c: &mut Criterion) {
    // Whole-machine cycles/second on a small arithmetic loop.
    let r = |i: u8| Reg::new(i).unwrap();
    let program = {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.addi(r(1), Reg::ZERO, 500);
        b.addi(r(2), Reg::ZERO, 0x10000);
        b.bind(top).unwrap();
        b.load(r(3), r(2), 0);
        b.alu(pl_isa::AluOp::Add, r(4), r(4), r(3));
        b.store(r(4), r(2), 8);
        b.addi(r(2), r(2), 64);
        b.addi(r(1), r(1), -1);
        b.branch(pl_isa::BranchCond::Ne, r(1), Reg::ZERO, top);
        b.build().unwrap()
    };
    c.bench_function("machine/run_3k_inst_program", |b| {
        let cfg = MachineConfig::default_single_core();
        b.iter_batched(
            || {
                let mut m = Machine::new(&cfg).unwrap();
                m.load_program(CoreId(0), program.clone());
                m
            },
            |mut m| black_box(m.run(10_000_000).unwrap()),
            BatchSize::SmallInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cache, bench_predictor, bench_cst, bench_noc, bench_machine_throughput
}
criterion_main!(benches);
