//! Microbenchmarks of the simulator's building blocks: cache lookups,
//! TAGE predictions, CST pin checks, NoC routing, and whole-machine
//! simulation throughput, on the in-tree `pl_bench::timing` harness.
//! These guard the simulator's own performance (cycles simulated per
//! second), which the figure harnesses depend on.
//!
//! Run with `cargo bench -p pl-bench --bench components`; writes
//! `results/bench_components.json`.

use pl_base::{Addr, CacheConfig, CoreId, Cycle, LineAddr, MachineConfig, SimRng, Stats};
use pl_bench::timing::TimingHarness;
use pl_isa::{Pc, ProgramBuilder, Reg};
use pl_machine::Machine;
use pl_mem::{Cache, Mesi, Msg, Noc, NodeId};
use pl_predictor::BranchPredictor;
use pl_secure::Cst;

fn bench_cache(h: &mut TimingHarness) {
    let cfg = CacheConfig {
        size_bytes: 32 * 1024,
        ways: 8,
        hit_latency: 2,
        mshr_entries: 16,
    };
    let mut cache: Cache<Mesi> = Cache::new(&cfg);
    for i in 0..256u64 {
        cache
            .insert(Addr::new(i * 64).line(), Mesi::Shared, |_, _| true)
            .unwrap();
    }
    let mut i = 0u64;
    h.bench("cache/lookup_hit", || {
        i = (i + 1) % 256;
        cache.get(Addr::new(i * 64).line()).copied()
    });

    let mut cache: Cache<Mesi> = Cache::new(&cfg);
    let mut i = 0u64;
    h.bench("cache/insert_evict", || {
        i += 1;
        cache.insert(Addr::new(i * 64).line(), Mesi::Exclusive, |_, _| true)
    });
}

fn bench_stats(h: &mut TimingHarness) {
    // The simulator's hottest bookkeeping calls: `Stats::add` and
    // `Stats::sample` on keys that already exist. These used to allocate
    // a `String` per call (`name.to_string()` before every map lookup);
    // the existing-key fast path makes them allocation-free, which these
    // benchmarks guard (compare `results/bench_components.json` across
    // runs to see the delta).
    let mut s = Stats::new();
    s.add("core.cycles", 0);
    h.bench("stats/add_existing", || s.add("core.cycles", 1));

    let mut s = Stats::new();
    s.sample("occ.rob", 0);
    let mut i = 0u64;
    h.bench("stats/sample_existing", || {
        i = (i + 1) % 192;
        s.sample("occ.rob", i);
    });

    // First-insertion path for contrast (still pays the allocation).
    let mut s = Stats::new();
    let keys: Vec<String> = (0..1024).map(|i| format!("k{i}")).collect();
    let mut i = 0usize;
    h.bench("stats/add_mixed_keys", || {
        i = (i + 1) % keys.len();
        s.add(&keys[i], 1);
    });
}

fn bench_predictor(h: &mut TimingHarness) {
    let mut bp = BranchPredictor::new(4096, 16);
    let mut i = 0u64;
    h.bench("tage/predict_update", || {
        i += 1;
        let pc = Pc((i % 64) as usize);
        let taken = (i / 64).is_multiple_of(3);
        let (pred, ckpt) = bp.predict_cond(pc);
        bp.update_cond(pc, taken, pred, &ckpt);
    });
}

fn bench_cst(h: &mut TimingHarness) {
    let mut rng = SimRng::new(1);
    let lines: Vec<LineAddr> = (0..1024)
        .map(|_| Addr::new(rng.next_u64() & 0xfff_ffc0).line())
        .collect();
    let mut cst = Cst::finite(40, 2);
    let live = |_id: u64| -> Option<LineAddr> { None };
    let mut i = 0usize;
    h.bench("cst/try_pin", || {
        i = (i + 1) % lines.len();
        cst.try_pin(i as u64 % 64, lines[i], i as u64, &live)
    });
}

fn bench_noc(h: &mut TimingHarness) {
    h.bench_with_setup(
        "noc/send_deliver",
        || Noc::new(4, 2, 1),
        |mut noc| {
            for i in 0..64u64 {
                noc.send(
                    Cycle(i),
                    NodeId::Core(CoreId((i % 8) as usize)),
                    NodeId::Slice(((i + 3) % 8) as usize),
                    Msg::GetS {
                        line: Addr::new(i * 64).line(),
                        requester: CoreId(0),
                    },
                );
            }
            noc.deliver(Cycle(1000))
        },
    );
}

fn bench_machine_throughput(h: &mut TimingHarness) {
    // Whole-machine cycles/second on a small arithmetic loop.
    let r = |i: u8| Reg::new(i).unwrap();
    let program = {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.addi(r(1), Reg::ZERO, 500);
        b.addi(r(2), Reg::ZERO, 0x10000);
        b.bind(top).unwrap();
        b.load(r(3), r(2), 0);
        b.alu(pl_isa::AluOp::Add, r(4), r(4), r(3));
        b.store(r(4), r(2), 8);
        b.addi(r(2), r(2), 64);
        b.addi(r(1), r(1), -1);
        b.branch(pl_isa::BranchCond::Ne, r(1), Reg::ZERO, top);
        b.build().unwrap()
    };
    let cfg = MachineConfig::default_single_core();
    h.bench_with_setup(
        "machine/run_3k_inst",
        || {
            let mut m = Machine::new(&cfg).unwrap();
            m.load_program(CoreId(0), program.clone());
            m
        },
        |mut m| m.run(10_000_000).unwrap(),
    );
}

fn main() {
    let mut h = TimingHarness::new("components");
    bench_cache(&mut h);
    bench_stats(&mut h);
    bench_predictor(&mut h);
    bench_cst(&mut h);
    bench_noc(&mut h);
    bench_machine_throughput(&mut h);
    h.finish().expect("write benchmark report");
}
