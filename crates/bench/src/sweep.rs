//! Deterministic parallel fan-out for the figure/table sweeps.
//!
//! Every simulation in a sweep is independent — a `(configuration,
//! workload)` pair run on its own freshly constructed [`pl_machine::Machine`]
//! — so the config×workload matrix can be fanned out across OS threads
//! with plain work stealing. Simulated results are bit-identical across
//! thread counts because each job's machine is seeded only by its
//! configuration, and [`par_map`] returns results in input order.
//!
//! The thread count comes from `--threads N`, the `PL_SWEEP_THREADS`
//! environment variable, or [`std::thread::available_parallelism`], in
//! that priority order (see [`default_threads`]).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The sweep thread count: `PL_SWEEP_THREADS` if set (minimum 1), else
/// the machine's available parallelism.
pub fn default_threads() -> usize {
    match std::env::var("PL_SWEEP_THREADS") {
        Ok(raw) => raw
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("PL_SWEEP_THREADS={raw} is not a thread count"))
            .max(1),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Applies `f` to every item on up to `threads` worker threads, returning
/// the results in input order.
///
/// `f` receives `(index, &item)`. Work is distributed dynamically (an
/// atomic cursor), so long jobs don't straggle behind a static split; the
/// output is nonetheless deterministic because results are written to
/// their input slot. With `threads <= 1` the loop runs inline, which is
/// the reference serial path the determinism tests compare against.
///
/// # Panics
///
/// Propagates a panic from any job after the scope joins.
pub fn par_map<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = threads.min(items.len()).max(1);
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<U>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let value = f(i, item);
                slots.lock().expect("no panic while holding results lock")[i] = Some(value);
            });
        }
    });
    slots
        .into_inner()
        .expect("worker threads joined")
        .into_iter()
        .map(|slot| slot.expect("every job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(8, &items, |i, &x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn matches_serial_for_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let serial = par_map(1, &items, |_, &x| x.wrapping_mul(0x9e37).rotate_left(7));
        for threads in [2, 3, 8, 64] {
            let parallel = par_map(threads, &items, |_, &x| {
                x.wrapping_mul(0x9e37).rotate_left(7)
            });
            assert_eq!(serial, parallel, "diverged at {threads} threads");
        }
    }

    #[test]
    fn handles_empty_and_oversubscribed_input() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        let one = [42u8];
        assert_eq!(par_map(16, &one, |_, &x| x as u32 + 1), vec![43]);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn job_panics_propagate() {
        let items: Vec<usize> = (0..20).collect();
        par_map(4, &items, |i, _| {
            if i == 13 {
                panic!("job 13 exploded");
            }
            i
        });
    }

    #[test]
    fn env_override_feeds_default_threads() {
        // Only asserts the fallback shape; the env var itself is covered
        // by the sweep smoke test to avoid process-global races here.
        assert!(default_threads() >= 1);
    }
}
