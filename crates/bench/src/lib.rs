//! Shared harness code for the figure/table reproduction binaries.
//!
//! Each binary under `src/bin/` regenerates one artifact from the paper's
//! evaluation (see `DESIGN.md` for the index). This library provides the
//! common machinery: building the configuration matrix of Table 3,
//! fanning the config×workload matrix out across OS threads
//! ([`sweep::par_map`]), caching the Unsafe baseline per workload
//! ([`BaselineCache`]), and printing aligned tables.
//!
//! Every simulation is deterministic given its configuration, so sweep
//! output is bit-identical for any thread count; `--threads 1` (or
//! `PL_SWEEP_THREADS=1`) is the reference serial path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod serve;
pub mod sweep;
pub mod timing;

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use pl_base::{geo_mean, DefenseScheme, MachineConfig, PinMode, PinnedLoadsConfig, ThreatModel};
use pl_machine::{Machine, RunResult};
use pl_secure::VpMask;
use pl_workloads::{Scale, Workload};

/// Cycle budget per run; generous because defended configurations can be
/// several times slower than Unsafe.
pub const RUN_BUDGET: u64 = 2_000_000_000;

/// The Table 3 extension matrix for one defense scheme: `Comp`, `LP`,
/// `EP`, `Spectre`.
///
/// # Examples
///
/// ```
/// use pl_base::{DefenseScheme, MachineConfig};
/// use pl_bench::extension_matrix;
/// let m = extension_matrix(&MachineConfig::default_single_core(), DefenseScheme::Dom);
/// let labels: Vec<&str> = m.iter().map(|(l, _)| *l).collect();
/// assert_eq!(labels, ["Comp", "LP", "EP", "Spectre"]);
/// ```
pub fn extension_matrix(
    base: &MachineConfig,
    scheme: DefenseScheme,
) -> Vec<(&'static str, MachineConfig)> {
    let mut comp = base.clone();
    comp.defense = scheme;
    comp.threat_model = ThreatModel::Comprehensive;
    comp.pinned_loads = PinnedLoadsConfig::with_mode(PinMode::Off);

    let mut lp = comp.clone();
    lp.pinned_loads = PinnedLoadsConfig::with_mode(PinMode::Late);

    let mut ep = comp.clone();
    ep.pinned_loads = PinnedLoadsConfig::with_mode(PinMode::Early);

    let mut spectre = comp.clone();
    spectre.threat_model = ThreatModel::Spectre;

    vec![("Comp", comp), ("LP", lp), ("EP", ep), ("Spectre", spectre)]
}

/// The unprotected baseline all CPIs are normalized to.
pub fn unsafe_config(base: &MachineConfig) -> MachineConfig {
    let mut cfg = base.clone();
    cfg.defense = DefenseScheme::Unsafe;
    cfg.pinned_loads = PinnedLoadsConfig::with_mode(PinMode::Off);
    cfg
}

/// Runs `workload` on a fresh machine with `cfg`.
///
/// # Panics
///
/// Panics with a diagnostic if the run deadlocks or exceeds the budget —
/// both indicate a harness bug worth failing loudly on.
pub fn run_workload(cfg: &MachineConfig, workload: &Workload) -> RunResult {
    run_masked(cfg, None, workload)
}

/// Like [`run_workload`], with an optional VP-mask override applied
/// before the run (the Figure 1/9 attribution experiments).
///
/// When the `PL_SWEEP_SERVER` environment variable names a running
/// [`serve::serve`] instance, untraced jobs are routed through it — and
/// therefore through its content-addressed result cache, so repeated
/// sweeps of the same `(workload, config, seed)` triple simulate once.
/// Traced jobs always run locally because traces don't travel over the
/// wire.
pub fn run_masked(cfg: &MachineConfig, mask: Option<VpMask>, workload: &Workload) -> RunResult {
    if !cfg.trace.enabled {
        if let Ok(addr) = std::env::var("PL_SWEEP_SERVER") {
            if !addr.is_empty() {
                return serve::remote_run(&addr, cfg, mask, workload).unwrap_or_else(|e| {
                    panic!("PL_SWEEP_SERVER={addr}: workload `{}`: {e}", workload.name)
                });
            }
        }
    }
    let mut machine = Machine::new(cfg).expect("benchmark configurations are valid");
    workload.install(&mut machine);
    if let Some(mask) = mask {
        machine.set_vp_mask(mask);
    }
    machine
        .run(RUN_BUDGET)
        .unwrap_or_else(|e| panic!("workload `{}` on {}: {e}", workload.name, cfg.label()))
}

/// One sweep job: a machine configuration plus an optional VP-mask
/// override (`None` for a plain run).
pub type SweepJob = (MachineConfig, Option<VpMask>);

/// Runs every `job × workload` pair, fanned out over `threads` worker
/// threads, and returns the full results grouped as
/// `out[job][workload]`.
///
/// Each pair simulates on its own freshly constructed machine, so the
/// results are bit-identical for every thread count.
pub fn sweep_results(
    jobs: &[SweepJob],
    workloads: &[Workload],
    threads: usize,
) -> Vec<Vec<RunResult>> {
    let pairs: Vec<(usize, usize)> = (0..jobs.len())
        .flat_map(|j| (0..workloads.len()).map(move |w| (j, w)))
        .collect();
    let flat = sweep::par_map(threads, &pairs, |_, &(j, w)| {
        let (cfg, mask) = &jobs[j];
        run_masked(cfg, *mask, &workloads[w])
    });
    let mut flat = flat.into_iter();
    (0..jobs.len())
        .map(|_| {
            (0..workloads.len())
                .map(|_| flat.next().expect("full matrix"))
                .collect()
        })
        .collect()
}

/// [`sweep_results`], reduced to raw CPIs: `out[job][workload]`.
pub fn sweep_cpis(jobs: &[SweepJob], workloads: &[Workload], threads: usize) -> Vec<Vec<f64>> {
    sweep_results(jobs, workloads, threads)
        .into_iter()
        .map(|row| row.into_iter().map(|r| r.cpi()).collect())
        .collect()
}

/// Per-workload Unsafe-baseline CPIs, cached so each baseline is
/// simulated exactly once per sweep no matter how many defended
/// configurations are normalized against it.
///
/// The old free-function `normalized_cpi` re-ran the Unsafe baseline on
/// every call — once per defended configuration in the extension matrix.
/// Construct one cache per sweep instead, [`BaselineCache::prime`] it
/// across threads, and normalize everything through it.
pub struct BaselineCache {
    cfg: MachineConfig,
    cpis: Mutex<HashMap<String, f64>>,
    runs: AtomicUsize,
}

impl BaselineCache {
    /// Creates an empty cache keyed off the Unsafe variant of `base`.
    pub fn new(base: &MachineConfig) -> BaselineCache {
        BaselineCache {
            cfg: unsafe_config(base),
            cpis: Mutex::new(HashMap::new()),
            runs: AtomicUsize::new(0),
        }
    }

    /// Simulates the baseline for every not-yet-cached workload, fanned
    /// out over `threads` worker threads.
    pub fn prime(&self, workloads: &[Workload], threads: usize) {
        let missing: Vec<&Workload> = {
            let cache = self.cpis.lock().expect("baseline cache lock");
            workloads
                .iter()
                .filter(|w| !cache.contains_key(&w.name))
                .collect()
        };
        let fresh = sweep::par_map(threads, &missing, |_, w| {
            self.runs.fetch_add(1, Ordering::Relaxed);
            run_workload(&self.cfg, w).cpi()
        });
        let mut cache = self.cpis.lock().expect("baseline cache lock");
        for (w, cpi) in missing.iter().zip(fresh) {
            cache.insert(w.name.clone(), cpi);
        }
    }

    /// The baseline CPI for `workload`, simulating it (once) on a cache
    /// miss.
    pub fn cpi(&self, workload: &Workload) -> f64 {
        if let Some(&cpi) = self
            .cpis
            .lock()
            .expect("baseline cache lock")
            .get(&workload.name)
        {
            return cpi;
        }
        self.runs.fetch_add(1, Ordering::Relaxed);
        let cpi = run_workload(&self.cfg, workload).cpi();
        self.cpis
            .lock()
            .expect("baseline cache lock")
            .insert(workload.name.clone(), cpi);
        cpi
    }

    /// Baseline CPIs for `workloads`, in order (simulating any misses).
    pub fn cpis_for(&self, workloads: &[Workload]) -> Vec<f64> {
        workloads.iter().map(|w| self.cpi(w)).collect()
    }

    /// CPI of `cfg` on `workload`, normalized to the cached Unsafe
    /// baseline.
    pub fn normalized_cpi(&self, cfg: &MachineConfig, workload: &Workload) -> f64 {
        run_workload(cfg, workload).cpi() / self.cpi(workload)
    }

    /// How many baseline simulations this cache has actually run — the
    /// exactly-once guarantee the sweep smoke test asserts on.
    pub fn baseline_runs(&self) -> usize {
        self.runs.load(Ordering::Relaxed)
    }
}

/// Unsafe-baseline CPI per workload, computed once each (in parallel) and
/// shared across the scheme tables.
pub fn unsafe_cpis(base: &MachineConfig, workloads: &[Workload], threads: usize) -> Vec<f64> {
    let cache = BaselineCache::new(base);
    cache.prime(workloads, threads);
    cache.cpis_for(workloads)
}

/// Normalized-CPI rows for one scheme: one row per workload with the four
/// Table 3 columns (`Comp`, `LP`, `EP`, `Spectre`), the whole matrix
/// fanned out over `threads`.
pub fn scheme_cpi_rows(
    base: &MachineConfig,
    workloads: &[Workload],
    scheme: DefenseScheme,
    baselines: &[f64],
    threads: usize,
) -> Vec<Vec<f64>> {
    scheme_matrix_rows(base, &[scheme], workloads, baselines, threads).remove(0)
}

/// Normalized-CPI rows for several schemes at once, as
/// `out[scheme][workload][column]` — a single fan-out across the full
/// scheme×workload×extension matrix so every simulation is available to
/// the thread pool from the start.
pub fn scheme_matrix_rows(
    base: &MachineConfig,
    schemes: &[DefenseScheme],
    workloads: &[Workload],
    baselines: &[f64],
    threads: usize,
) -> Vec<Vec<Vec<f64>>> {
    let jobs: Vec<SweepJob> = schemes
        .iter()
        .flat_map(|&s| {
            extension_matrix(base, s)
                .into_iter()
                .map(|(_, cfg)| (cfg, None))
        })
        .collect();
    let cols = jobs.len() / schemes.len().max(1);
    let per_job = sweep_cpis(&jobs, workloads, threads);
    (0..schemes.len())
        .map(|si| {
            (0..workloads.len())
                .map(|w| {
                    (0..cols)
                        .map(|c| per_job[si * cols + c][w] / baselines[w])
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Geo-mean execution-overhead percentage per job, from raw
/// [`sweep_cpis`] output and per-workload baselines.
pub fn geo_overheads(cpis_per_job: &[Vec<f64>], baselines: &[f64]) -> Vec<f64> {
    cpis_per_job
        .iter()
        .map(|cpis| {
            let normalized: Vec<f64> = cpis.iter().zip(baselines).map(|(c, b)| c / b).collect();
            overhead_pct(geo_mean(&normalized).expect("positive CPIs"))
        })
        .collect()
}

/// Formats a row of `values` under `name`, one column per configuration.
pub fn format_row(name: &str, values: &[f64]) -> String {
    use std::fmt::Write as _;
    let mut s = format!("{name:<16}");
    for v in values {
        let _ = write!(s, " {v:>8.3}");
    }
    s
}

/// Formats the header row for a table with the given column labels.
pub fn format_header(columns: &[&str]) -> String {
    use std::fmt::Write as _;
    let mut s = format!("{:<16}", "benchmark");
    for c in columns {
        let _ = write!(s, " {c:>8}");
    }
    s
}

/// Geometric mean over the per-benchmark values of each column.
///
/// # Panics
///
/// Panics if the matrix is empty or ragged.
pub fn geo_mean_rows(rows: &[Vec<f64>]) -> Vec<f64> {
    assert!(!rows.is_empty(), "need at least one benchmark row");
    let cols = rows[0].len();
    (0..cols)
        .map(|c| {
            let col: Vec<f64> = rows.iter().map(|r| r[c]).collect();
            geo_mean(&col).expect("normalized CPIs are positive")
        })
        .collect()
}

/// Converts a normalized CPI into the "execution overhead" percentage the
/// paper reports (1.20 -> 20%).
pub fn overhead_pct(normalized_cpi: f64) -> f64 {
    (normalized_cpi - 1.0) * 100.0
}

/// Prints a full normalized-CPI table for one scheme, with a trailing
/// geometric-mean row, and returns the geo-mean values.
pub fn print_scheme_table(scheme: DefenseScheme, names: &[String], rows: &[Vec<f64>]) -> Vec<f64> {
    println!("\n--- {scheme} (normalized CPI vs Unsafe) ---");
    println!("{}", format_header(&["Comp", "LP", "EP", "Spectre"]));
    for (name, row) in names.iter().zip(rows) {
        println!("{}", format_row(name, row));
    }
    let gm = geo_mean_rows(rows);
    println!("{}", format_row("Geo. Mean", &gm));
    println!(
        "overheads: Comp {:.1}%  LP {:.1}%  EP {:.1}%  Spectre {:.1}%",
        overhead_pct(gm[0]),
        overhead_pct(gm[1]),
        overhead_pct(gm[2]),
        overhead_pct(gm[3]),
    );
    gm
}

/// Parsed CLI flags shared by the figure binaries.
#[derive(Debug, Clone, Copy)]
pub struct BenchArgs {
    /// Workload scale (`--scale test|bench|full`).
    pub scale: Scale,
    /// Simulated core count for the parallel suites (`--cores N`).
    pub cores: usize,
    /// Sweep worker threads (`--threads N`, default from
    /// [`sweep::default_threads`]).
    pub threads: usize,
}

/// Parses the common CLI flags of the figure binaries:
/// `--scale test|bench|full`, `--cores N`, and `--threads N` (sweep
/// worker threads; defaults to `PL_SWEEP_THREADS` or the machine's
/// available parallelism). Unknown flags abort with a usage message.
pub fn parse_args() -> BenchArgs {
    let mut parsed = BenchArgs {
        scale: Scale::Bench,
        cores: 8,
        threads: sweep::default_threads(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                parsed.scale = match args.get(i).map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("bench") => Scale::Bench,
                    Some("full") => Scale::Full,
                    other => {
                        eprintln!("unknown scale {other:?}; use test|bench|full");
                        std::process::exit(2);
                    }
                };
            }
            "--cores" => {
                i += 1;
                parsed.cores = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--cores requires a number");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                i += 1;
                parsed.threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&t: &usize| t >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--threads requires a number >= 1");
                        std::process::exit(2);
                    });
            }
            other => {
                eprintln!(
                    "unknown flag {other}; supported: --scale test|bench|full, \
                     --cores N, --threads N"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    parsed
}

/// Prints the simulated-architecture banner (Table 1 summary) so every
/// report is self-describing.
pub fn print_banner(title: &str, cfg: &MachineConfig) {
    println!("== {title} ==");
    println!(
        "machine: {} core(s), ROB {}, LQ {}, SQ {}, WB {}, L1D {}KB/{}-way, \
         LLC {}x{}MB/{}-way, DRAM {} cycles",
        cfg.num_cores,
        cfg.core.rob_entries,
        cfg.core.lq_entries,
        cfg.core.sq_entries,
        cfg.core.write_buffer_entries,
        cfg.mem.l1d.size_bytes / 1024,
        cfg.mem.l1d.ways,
        cfg.mem.llc_slices,
        cfg.mem.llc_slice.size_bytes / (1024 * 1024),
        cfg.mem.llc_slice.ways,
        cfg.mem.dram_latency,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_table_3() {
        let base = MachineConfig::default_single_core();
        for scheme in DefenseScheme::PROTECTED {
            let m = extension_matrix(&base, scheme);
            assert_eq!(m.len(), 4);
            for (_, cfg) in &m {
                cfg.validate().unwrap();
                assert_eq!(cfg.defense, scheme);
            }
            assert_eq!(m[0].1.pinned_loads.mode, PinMode::Off);
            assert_eq!(m[1].1.pinned_loads.mode, PinMode::Late);
            assert_eq!(m[2].1.pinned_loads.mode, PinMode::Early);
            assert_eq!(m[3].1.threat_model, ThreatModel::Spectre);
        }
    }

    #[test]
    fn unsafe_config_is_undefended() {
        let cfg = unsafe_config(&MachineConfig::default_multi_core(4));
        assert_eq!(cfg.defense, DefenseScheme::Unsafe);
        assert_eq!(cfg.num_cores, 4);
        cfg.validate().unwrap();
    }

    #[test]
    fn overhead_percentage() {
        assert!((overhead_pct(1.0)).abs() < 1e-12);
        assert!((overhead_pct(2.126) - 112.6).abs() < 1e-9);
    }

    #[test]
    fn geo_mean_rows_by_column() {
        let rows = vec![vec![1.0, 2.0], vec![4.0, 8.0]];
        let g = geo_mean_rows(&rows);
        assert!((g[0] - 2.0).abs() < 1e-12);
        assert!((g[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn rows_align_with_header() {
        let h = format_header(&["Comp", "LP"]);
        let r = format_row("stream", &[1.5, 1.25]);
        assert_eq!(h.len(), r.len());
    }

    #[test]
    fn baseline_cache_normalizes_unsafe_to_one_and_runs_once() {
        let base = MachineConfig::default_single_core();
        let w = pl_workloads::spec_suite(Scale::Test).remove(4); // alu_dense
        let cache = BaselineCache::new(&base);
        let n = cache.normalized_cpi(&unsafe_config(&base), &w);
        assert!((n - 1.0).abs() < 1e-9);
        assert_eq!(cache.baseline_runs(), 1);
        // Re-normalizing against the same workload reuses the cached
        // baseline — the fix for the old per-call re-simulation.
        let n2 = cache.normalized_cpi(&unsafe_config(&base), &w);
        assert!((n2 - 1.0).abs() < 1e-9);
        assert_eq!(cache.baseline_runs(), 1);
    }

    #[test]
    fn prime_skips_cached_workloads() {
        let base = MachineConfig::default_single_core();
        let workloads: Vec<Workload> = pl_workloads::spec_suite(Scale::Test)
            .into_iter()
            .filter(|w| ["alu_dense", "pointer_chase"].contains(&w.name.as_str()))
            .collect();
        let cache = BaselineCache::new(&base);
        cache.prime(&workloads, 2);
        assert_eq!(cache.baseline_runs(), workloads.len());
        cache.prime(&workloads, 2);
        assert_eq!(cache.baseline_runs(), workloads.len());
    }

    #[test]
    fn geo_overheads_matches_by_hand() {
        let cpis = vec![vec![2.0, 2.0], vec![1.0, 4.0]];
        let baselines = [1.0, 2.0];
        let o = geo_overheads(&cpis, &baselines);
        // job 0: normalized {2.0, 1.0} -> geo-mean sqrt(2) -> 41.42%.
        assert!((o[0] - ((2.0f64).sqrt() - 1.0) * 100.0).abs() < 1e-9);
        // job 1: normalized {1.0, 2.0} -> same geo-mean.
        assert!((o[1] - o[0]).abs() < 1e-9);
    }
}
