//! Shared harness code for the figure/table reproduction binaries.
//!
//! Each binary under `src/bin/` regenerates one artifact from the paper's
//! evaluation (see `DESIGN.md` for the index). This library provides the
//! common machinery: building the configuration matrix of Table 3,
//! running workloads, normalizing CPI against the Unsafe baseline, and
//! printing aligned tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pl_base::{geo_mean, DefenseScheme, MachineConfig, PinMode, PinnedLoadsConfig, ThreatModel};
use pl_machine::{Machine, RunResult};
use pl_workloads::{Scale, Workload};

/// Cycle budget per run; generous because defended configurations can be
/// several times slower than Unsafe.
pub const RUN_BUDGET: u64 = 2_000_000_000;

/// The Table 3 extension matrix for one defense scheme: `Comp`, `LP`,
/// `EP`, `Spectre`.
///
/// # Examples
///
/// ```
/// use pl_base::{DefenseScheme, MachineConfig};
/// use pl_bench::extension_matrix;
/// let m = extension_matrix(&MachineConfig::default_single_core(), DefenseScheme::Dom);
/// let labels: Vec<&str> = m.iter().map(|(l, _)| *l).collect();
/// assert_eq!(labels, ["Comp", "LP", "EP", "Spectre"]);
/// ```
pub fn extension_matrix(
    base: &MachineConfig,
    scheme: DefenseScheme,
) -> Vec<(&'static str, MachineConfig)> {
    let mut comp = base.clone();
    comp.defense = scheme;
    comp.threat_model = ThreatModel::Comprehensive;
    comp.pinned_loads = PinnedLoadsConfig::with_mode(PinMode::Off);

    let mut lp = comp.clone();
    lp.pinned_loads = PinnedLoadsConfig::with_mode(PinMode::Late);

    let mut ep = comp.clone();
    ep.pinned_loads = PinnedLoadsConfig::with_mode(PinMode::Early);

    let mut spectre = comp.clone();
    spectre.threat_model = ThreatModel::Spectre;

    vec![("Comp", comp), ("LP", lp), ("EP", ep), ("Spectre", spectre)]
}

/// The unprotected baseline all CPIs are normalized to.
pub fn unsafe_config(base: &MachineConfig) -> MachineConfig {
    let mut cfg = base.clone();
    cfg.defense = DefenseScheme::Unsafe;
    cfg.pinned_loads = PinnedLoadsConfig::with_mode(PinMode::Off);
    cfg
}

/// Runs `workload` on a fresh machine with `cfg`.
///
/// # Panics
///
/// Panics with a diagnostic if the run deadlocks or exceeds the budget —
/// both indicate a harness bug worth failing loudly on.
pub fn run_workload(cfg: &MachineConfig, workload: &Workload) -> RunResult {
    let mut machine = Machine::new(cfg).expect("benchmark configurations are valid");
    workload.install(&mut machine);
    machine
        .run(RUN_BUDGET)
        .unwrap_or_else(|e| panic!("workload `{}` on {}: {e}", workload.name, cfg.label()))
}

/// CPI of `cfg` on `workload`, normalized to the Unsafe baseline.
pub fn normalized_cpi(base: &MachineConfig, cfg: &MachineConfig, workload: &Workload) -> f64 {
    let unsafe_cpi = run_workload(&unsafe_config(base), workload).cpi();
    let cpi = run_workload(cfg, workload).cpi();
    cpi / unsafe_cpi
}

/// Formats a row of `values` under `name`, one column per configuration.
pub fn format_row(name: &str, values: &[f64]) -> String {
    use std::fmt::Write as _;
    let mut s = format!("{name:<16}");
    for v in values {
        let _ = write!(s, " {v:>8.3}");
    }
    s
}

/// Formats the header row for a table with the given column labels.
pub fn format_header(columns: &[&str]) -> String {
    use std::fmt::Write as _;
    let mut s = format!("{:<16}", "benchmark");
    for c in columns {
        let _ = write!(s, " {c:>8}");
    }
    s
}

/// Geometric mean over the per-benchmark values of each column.
///
/// # Panics
///
/// Panics if the matrix is empty or ragged.
pub fn geo_mean_rows(rows: &[Vec<f64>]) -> Vec<f64> {
    assert!(!rows.is_empty(), "need at least one benchmark row");
    let cols = rows[0].len();
    (0..cols)
        .map(|c| {
            let col: Vec<f64> = rows.iter().map(|r| r[c]).collect();
            geo_mean(&col).expect("normalized CPIs are positive")
        })
        .collect()
}

/// Converts a normalized CPI into the "execution overhead" percentage the
/// paper reports (1.20 -> 20%).
pub fn overhead_pct(normalized_cpi: f64) -> f64 {
    (normalized_cpi - 1.0) * 100.0
}

/// Unsafe-baseline CPI per workload, computed once and shared across the
/// scheme tables.
pub fn unsafe_cpis(base: &MachineConfig, workloads: &[Workload]) -> Vec<f64> {
    let cfg = unsafe_config(base);
    workloads.iter().map(|w| run_workload(&cfg, w).cpi()).collect()
}

/// Normalized-CPI rows for one scheme: one row per workload with the four
/// Table 3 columns (`Comp`, `LP`, `EP`, `Spectre`).
pub fn scheme_cpi_rows(
    base: &MachineConfig,
    workloads: &[Workload],
    scheme: DefenseScheme,
    baselines: &[f64],
) -> Vec<Vec<f64>> {
    let matrix = extension_matrix(base, scheme);
    workloads
        .iter()
        .zip(baselines)
        .map(|(w, &unsafe_cpi)| {
            matrix
                .iter()
                .map(|(_, cfg)| run_workload(cfg, w).cpi() / unsafe_cpi)
                .collect()
        })
        .collect()
}

/// Prints a full normalized-CPI table for one scheme, with a trailing
/// geometric-mean row, and returns the geo-mean values.
pub fn print_scheme_table(
    scheme: DefenseScheme,
    names: &[String],
    rows: &[Vec<f64>],
) -> Vec<f64> {
    println!("\n--- {scheme} (normalized CPI vs Unsafe) ---");
    println!("{}", format_header(&["Comp", "LP", "EP", "Spectre"]));
    for (name, row) in names.iter().zip(rows) {
        println!("{}", format_row(name, row));
    }
    let gm = geo_mean_rows(rows);
    println!("{}", format_row("Geo. Mean", &gm));
    println!(
        "overheads: Comp {:.1}%  LP {:.1}%  EP {:.1}%  Spectre {:.1}%",
        overhead_pct(gm[0]),
        overhead_pct(gm[1]),
        overhead_pct(gm[2]),
        overhead_pct(gm[3]),
    );
    gm
}

/// Parses the common CLI flags of the figure binaries:
/// `--scale test|bench|full` and `--cores N`. Unknown flags abort with a
/// usage message.
pub fn parse_args() -> (Scale, usize) {
    let mut scale = Scale::Bench;
    let mut cores = 8usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("bench") => Scale::Bench,
                    Some("full") => Scale::Full,
                    other => {
                        eprintln!("unknown scale {other:?}; use test|bench|full");
                        std::process::exit(2);
                    }
                };
            }
            "--cores" => {
                i += 1;
                cores = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--cores requires a number");
                        std::process::exit(2);
                    });
            }
            other => {
                eprintln!("unknown flag {other}; supported: --scale test|bench|full, --cores N");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    (scale, cores)
}

/// Prints the simulated-architecture banner (Table 1 summary) so every
/// report is self-describing.
pub fn print_banner(title: &str, cfg: &MachineConfig) {
    println!("== {title} ==");
    println!(
        "machine: {} core(s), ROB {}, LQ {}, SQ {}, WB {}, L1D {}KB/{}-way, \
         LLC {}x{}MB/{}-way, DRAM {} cycles",
        cfg.num_cores,
        cfg.core.rob_entries,
        cfg.core.lq_entries,
        cfg.core.sq_entries,
        cfg.core.write_buffer_entries,
        cfg.mem.l1d.size_bytes / 1024,
        cfg.mem.l1d.ways,
        cfg.mem.llc_slices,
        cfg.mem.llc_slice.size_bytes / (1024 * 1024),
        cfg.mem.llc_slice.ways,
        cfg.mem.dram_latency,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_table_3() {
        let base = MachineConfig::default_single_core();
        for scheme in DefenseScheme::PROTECTED {
            let m = extension_matrix(&base, scheme);
            assert_eq!(m.len(), 4);
            for (_, cfg) in &m {
                cfg.validate().unwrap();
                assert_eq!(cfg.defense, scheme);
            }
            assert_eq!(m[0].1.pinned_loads.mode, PinMode::Off);
            assert_eq!(m[1].1.pinned_loads.mode, PinMode::Late);
            assert_eq!(m[2].1.pinned_loads.mode, PinMode::Early);
            assert_eq!(m[3].1.threat_model, ThreatModel::Spectre);
        }
    }

    #[test]
    fn unsafe_config_is_undefended() {
        let cfg = unsafe_config(&MachineConfig::default_multi_core(4));
        assert_eq!(cfg.defense, DefenseScheme::Unsafe);
        assert_eq!(cfg.num_cores, 4);
        cfg.validate().unwrap();
    }

    #[test]
    fn overhead_percentage() {
        assert!((overhead_pct(1.0)).abs() < 1e-12);
        assert!((overhead_pct(2.126) - 112.6).abs() < 1e-9);
    }

    #[test]
    fn geo_mean_rows_by_column() {
        let rows = vec![vec![1.0, 2.0], vec![4.0, 8.0]];
        let g = geo_mean_rows(&rows);
        assert!((g[0] - 2.0).abs() < 1e-12);
        assert!((g[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn rows_align_with_header() {
        let h = format_header(&["Comp", "LP"]);
        let r = format_row("stream", &[1.5, 1.25]);
        assert_eq!(h.len(), r.len());
    }

    #[test]
    fn normalized_cpi_of_unsafe_is_one() {
        let base = MachineConfig::default_single_core();
        let w = pl_workloads::spec_suite(Scale::Test).remove(4); // alu_dense
        let n = normalized_cpi(&base, &unsafe_config(&base), &w);
        assert!((n - 1.0).abs() < 1e-9);
    }
}
