//! A small in-tree timing harness replacing the external `criterion`
//! dependency for the `benches/` targets.
//!
//! Methodology per benchmark: one calibration run picks an iteration
//! count so a sample lasts roughly [`TimingHarness::TARGET_SAMPLE_MS`],
//! a warmup sample is discarded, then `k` samples are timed and reported
//! as median ± standard deviation of per-iteration nanoseconds. Results
//! are printed as an aligned table and written as JSON under `results/`
//! so successive runs can be diffed.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One benchmark's timing summary, in per-iteration nanoseconds.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Benchmark name, e.g. `cache/lookup_hit`.
    pub name: String,
    /// Iterations per timed sample.
    pub iters: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Median of the per-sample per-iteration times.
    pub median_ns: f64,
    /// Mean of the per-sample per-iteration times.
    pub mean_ns: f64,
    /// Standard deviation across samples.
    pub stddev_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
}

/// Collects benchmark timings and writes the JSON report.
#[derive(Debug)]
pub struct TimingHarness {
    suite: String,
    records: Vec<BenchRecord>,
}

impl TimingHarness {
    /// Samples timed per benchmark.
    pub const SAMPLES: usize = 11;
    /// Target duration of one sample, used to calibrate iteration count.
    pub const TARGET_SAMPLE_MS: u64 = 10;

    /// Creates a harness for the named suite (one suite per bench target).
    pub fn new(suite: &str) -> TimingHarness {
        println!(
            "== {suite}: {} samples/bench, ~{}ms/sample, per-iteration ns ==",
            Self::SAMPLES,
            Self::TARGET_SAMPLE_MS
        );
        println!(
            "{:<28} {:>12} {:>12} {:>10}",
            "benchmark", "median", "stddev", "iters"
        );
        TimingHarness {
            suite: suite.to_string(),
            records: Vec::new(),
        }
    }

    /// Times `routine` (no per-iteration setup).
    pub fn bench<R>(&mut self, name: &str, mut routine: impl FnMut() -> R) {
        self.run(name, |iters| {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            start.elapsed().as_nanos() as f64
        });
    }

    /// Times `routine(setup())` per iteration, excluding `setup` from the
    /// measurement (the `criterion` `iter_batched` pattern).
    pub fn bench_with_setup<S, R>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        self.run(name, |iters| {
            let mut elapsed = 0.0f64;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                elapsed += start.elapsed().as_nanos() as f64;
            }
            elapsed
        });
    }

    /// Shared driver: `sample(iters)` returns total nanoseconds spent on
    /// the measured section over `iters` iterations.
    fn run(&mut self, name: &str, mut sample: impl FnMut(u64) -> f64) {
        // Calibrate so one sample is about TARGET_SAMPLE_MS.
        let once_ns = sample(1).max(1.0);
        let target_ns = (Self::TARGET_SAMPLE_MS * 1_000_000) as f64;
        let iters = ((target_ns / once_ns) as u64).clamp(1, 10_000_000);
        // Warmup sample, discarded.
        sample(iters);
        let mut per_iter: Vec<f64> = (0..Self::SAMPLES)
            .map(|_| sample(iters) / iters as f64)
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let var = per_iter
            .iter()
            .map(|t| (t - mean) * (t - mean))
            .sum::<f64>()
            / per_iter.len() as f64;
        let record = BenchRecord {
            name: name.to_string(),
            iters,
            samples: per_iter.len(),
            median_ns: median,
            mean_ns: mean,
            stddev_ns: var.sqrt(),
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
        };
        println!(
            "{:<28} {:>12} {:>12} {:>10}",
            record.name,
            format_ns(record.median_ns),
            format_ns(record.stddev_ns),
            record.iters
        );
        self.records.push(record);
    }

    /// Writes `results/bench_<suite>.json` (honoring `PL_BENCH_OUT` as an
    /// alternative output directory) and returns the path.
    ///
    /// This is the *only* place the harness consults the environment; it
    /// resolves the directory once and delegates to
    /// [`TimingHarness::finish_in`]. Tests and embedders that need a
    /// specific output directory call `finish_in` directly instead of
    /// mutating the process-global environment.
    pub fn finish(self) -> std::io::Result<PathBuf> {
        let dir = match std::env::var("PL_BENCH_OUT") {
            Ok(d) => PathBuf::from(d),
            Err(_) => PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results")),
        };
        self.finish_in(&dir)
    }

    /// Writes `bench_<suite>.json` into `dir` (created if missing) and
    /// returns the path. Environment-independent.
    pub fn finish_in(self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("bench_{}.json", self.suite));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{{")?;
        writeln!(f, "  \"suite\": \"{}\",", escape(&self.suite))?;
        writeln!(f, "  \"unit\": \"ns_per_iter\",")?;
        writeln!(f, "  \"benches\": [")?;
        for (i, r) in self.records.iter().enumerate() {
            let comma = if i + 1 == self.records.len() { "" } else { "," };
            writeln!(
                f,
                "    {{\"name\": \"{}\", \"iters\": {}, \"samples\": {}, \
                 \"median_ns\": {:.3}, \"mean_ns\": {:.3}, \"stddev_ns\": {:.3}, \
                 \"min_ns\": {:.3}, \"max_ns\": {:.3}}}{comma}",
                escape(&r.name),
                r.iters,
                r.samples,
                r.median_ns,
                r.mean_ns,
                r.stddev_ns,
                r.min_ns,
                r.max_ns
            )?;
        }
        writeln!(f, "  ]")?;
        writeln!(f, "}}")?;
        println!("\nwrote {}", path.display());
        Ok(path)
    }

    /// The records collected so far (used by tests).
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.2}us", ns / 1_000.0)
    } else {
        format!("{ns:.1}ns")
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_sane_record() {
        let mut h = TimingHarness::new("selftest");
        let mut acc = 0u64;
        h.bench("spin", || {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            acc
        });
        let r = &h.records()[0];
        assert_eq!(r.name, "spin");
        assert!(r.iters >= 1);
        assert_eq!(r.samples, TimingHarness::SAMPLES);
        assert!(r.median_ns > 0.0);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
    }

    #[test]
    fn setup_is_excluded_from_measurement() {
        let mut h = TimingHarness::new("selftest_setup");
        h.bench_with_setup("sum_vec", || vec![1u64; 512], |v| v.iter().sum::<u64>());
        let r = &h.records()[0];
        // Summing 512 u64s takes well under the ~40us building+freeing
        // thousands of vectors would; the bound just catches gross
        // mis-measurement (setup leaking into the timed section).
        assert!(r.median_ns < 40_000.0, "median {}ns", r.median_ns);
    }

    #[test]
    fn json_report_is_written() {
        // `finish_in` takes the directory as a parameter, so the test
        // never mutates the process-global environment (tests run
        // concurrently; `env::set_var` here raced other harness users).
        let dir = std::env::temp_dir().join("pl_bench_timing_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut h = TimingHarness::new("jsontest");
        h.bench("noop", || 1u8);
        let path = h.finish_in(&dir).unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains("\"suite\": \"jsontest\""));
        assert!(body.contains("\"name\": \"noop\""));
        assert!(body.contains("median_ns"));
    }
}
