//! Section 9.2.3: directory/LLC partition size (W_d).
//!
//! Compares Early Pinning with W_d = 2 (default) against W_d = 1, keeping
//! CST sizes fixed, on both suites. The paper sees overheads rise
//! slightly at W_d = 1 (e.g., Fence 51.3% -> 54.7% on SPEC17), making
//! W_d = 2 the right choice.
//!
//! Run with `cargo run --release -p pl-bench --bin wd_sweep
//! [--scale ...] [--cores N] [--threads N]`.

use pl_base::{DefenseScheme, MachineConfig, PinMode, PinnedLoadsConfig};
use pl_bench::{geo_overheads, print_banner, sweep_cpis, unsafe_cpis, SweepJob};
use pl_workloads::{parallel_suite, spec_suite, Workload};

fn ep_config(base: &MachineConfig, scheme: DefenseScheme, wd: usize) -> MachineConfig {
    let mut cfg = base.clone();
    cfg.defense = scheme;
    cfg.pinned_loads = PinnedLoadsConfig::with_mode(PinMode::Early);
    cfg.pinned_loads.cst.wd = wd;
    // Keep the CST geometry fixed, per the paper's methodology: only the
    // per-core reservation changes. dir_records bounds the per-entry
    // capacity, so it tracks W_d.
    cfg.pinned_loads.cst.dir_records = wd;
    cfg
}

fn suite_sweep(name: &str, base: &MachineConfig, workloads: &[Workload], threads: usize) {
    let baselines = unsafe_cpis(base, workloads, threads);
    // Both W_d points for every scheme go into a single fan-out.
    let jobs: Vec<SweepJob> = DefenseScheme::PROTECTED
        .into_iter()
        .flat_map(|scheme| {
            [
                (ep_config(base, scheme, 2), None),
                (ep_config(base, scheme, 1), None),
            ]
        })
        .collect();
    let overheads = geo_overheads(&sweep_cpis(&jobs, workloads, threads), &baselines);
    println!("\n--- {name} ---");
    println!(
        "{:<8} {:>12} {:>12} {:>10}",
        "scheme", "Wd=2", "Wd=1", "delta"
    );
    for (si, scheme) in DefenseScheme::PROTECTED.into_iter().enumerate() {
        let (wd2, wd1) = (overheads[si * 2], overheads[si * 2 + 1]);
        println!(
            "{:<8} {:>11.1}% {:>11.1}% {:>+9.1}pp",
            scheme.to_string(),
            wd2,
            wd1,
            wd1 - wd2
        );
    }
}

fn main() {
    let args = pl_bench::parse_args();
    let single = MachineConfig::default_single_core();
    print_banner("Section 9.2.3: W_d sweep (EP)", &single);
    suite_sweep(
        "SPEC17-like",
        &single,
        &spec_suite(args.scale),
        args.threads,
    );
    let multi = MachineConfig::default_multi_core(args.cores);
    suite_sweep(
        &format!("Parallel ({} cores)", args.cores),
        &multi,
        &parallel_suite(args.cores, args.scale),
        args.threads,
    );
    println!(
        "\npaper reference: Wd=1 increases overhead slightly everywhere \
         (Fence 51.3->54.7% SPEC17), so Wd=2 is kept."
    );
}
