//! Section 9.2.3: directory/LLC partition size (W_d).
//!
//! Compares Early Pinning with W_d = 2 (default) against W_d = 1, keeping
//! CST sizes fixed, on both suites. The paper sees overheads rise
//! slightly at W_d = 1 (e.g., Fence 51.3% -> 54.7% on SPEC17), making
//! W_d = 2 the right choice.
//!
//! Run with `cargo run --release -p pl-bench --bin wd_sweep [--scale ...] [--cores N]`.

use pl_base::{geo_mean, DefenseScheme, MachineConfig, PinMode, PinnedLoadsConfig};
use pl_bench::{overhead_pct, print_banner, run_workload, unsafe_cpis};
use pl_workloads::{parallel_suite, spec_suite, Workload};

fn ep_overhead(
    base: &MachineConfig,
    scheme: DefenseScheme,
    wd: usize,
    workloads: &[Workload],
    baselines: &[f64],
) -> f64 {
    let mut cfg = base.clone();
    cfg.defense = scheme;
    cfg.pinned_loads = PinnedLoadsConfig::with_mode(PinMode::Early);
    cfg.pinned_loads.cst.wd = wd;
    // Keep the CST geometry fixed, per the paper's methodology: only the
    // per-core reservation changes. dir_records bounds the per-entry
    // capacity, so it tracks W_d.
    cfg.pinned_loads.cst.dir_records = wd;
    let normalized: Vec<f64> = workloads
        .iter()
        .zip(baselines)
        .map(|(w, &unsafe_cpi)| run_workload(&cfg, w).cpi() / unsafe_cpi)
        .collect();
    overhead_pct(geo_mean(&normalized).expect("positive CPIs"))
}

fn suite_sweep(name: &str, base: &MachineConfig, workloads: &[Workload]) {
    let baselines = unsafe_cpis(base, workloads);
    println!("\n--- {name} ---");
    println!("{:<8} {:>12} {:>12} {:>10}", "scheme", "Wd=2", "Wd=1", "delta");
    for scheme in DefenseScheme::PROTECTED {
        let wd2 = ep_overhead(base, scheme, 2, workloads, &baselines);
        let wd1 = ep_overhead(base, scheme, 1, workloads, &baselines);
        println!(
            "{:<8} {:>11.1}% {:>11.1}% {:>+9.1}pp",
            scheme.to_string(),
            wd2,
            wd1,
            wd1 - wd2
        );
    }
}

fn main() {
    let (scale, cores) = pl_bench::parse_args();
    let single = MachineConfig::default_single_core();
    print_banner("Section 9.2.3: W_d sweep (EP)", &single);
    suite_sweep("SPEC17-like", &single, &spec_suite(scale));
    let multi = MachineConfig::default_multi_core(cores);
    suite_sweep(
        &format!("Parallel ({cores} cores)"),
        &multi,
        &parallel_suite(cores, scale),
    );
    println!(
        "\npaper reference: Wd=1 increases overhead slightly everywhere \
         (Fence 51.3->54.7% SPEC17), so Wd=2 is kept."
    );
}
