//! Kernel-throughput benchmark: simulated kilocycles per wall-clock
//! second over the Figure 1 sweep.
//!
//! Every figure in the paper is a sweep of schemes × pin modes over all
//! workloads, so end-to-end reproduction time is dominated by
//! `Machine::tick` throughput. This binary records that throughput so
//! the perf trajectory across PRs is visible: it runs the same jobs as
//! `fig1` (the Unsafe baseline plus Fence under each cumulative VP mask,
//! on both the single-core and parallel suites), times each run, and
//! writes `results/BENCH_kernel.json`.
//!
//! Measurement is serial by design — one machine runs at a time, so the
//! number is per-core kernel throughput, not sweep parallelism. Each job
//! is repeated `--reps` times and the fastest repetition is kept.
//!
//! Run with `cargo run --release -p pl-bench --bin kernel_bench
//! [--scale test|bench|full] [--cores N] [--reps N] [--smoke]
//! [--no-spin-park]
//! [--baseline results/BENCH_kernel_baseline.json]
//! [--out results/BENCH_kernel.json]`.
//!
//! Besides the fig1 `spec/*` and `par/*` sweeps, a dedicated
//! `par_spin/*` group runs the spin-heavy `spin_relay` kernel alone, so
//! the machine's spin-signature parking path is measured in isolation
//! (the mixed par jobs average it away), and a `par_attack/*` group
//! runs the `pl-attack` gadget suite so leakage-sweep throughput is
//! guarded alongside the kernels. `--no-spin-park` disables spin
//! parking in every configuration — runs must keep identical cycle
//! counts (parking is architecturally invisible) while the wall time
//! shows the cost of ticking spinning cores; the committed
//! `results/BENCH_kernel_baseline.json` is refreshed with this flag.
//!
//! `--baseline` turns the run into a throughput-regression guard: after
//! measuring, every `par*` job (`par/*`, `par_spin/*`, `par_attack/*`)
//! present in both this run and the baseline report is compared, and
//! the process exits
//! 1 if any drops more than 20% below its baseline kc/s. Tier-1 points
//! it at the committed spin-parking-off baseline, making the guard a
//! hard floor: shared-machine noise cannot trip it (current throughput
//! is several multiples of the floor), while any change that leaves the
//! multicore path slower than the naive awake-core loop fails the gate.

use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use pl_base::{DefenseScheme, MachineConfig, PinMode, PinnedLoadsConfig, ThreatModel};
use pl_bench::print_banner;
use pl_machine::Machine;
use pl_secure::VpMask;
use pl_workloads::attack::attack_suite;
use pl_workloads::{parallel_suite, spec_suite, Scale, Workload};

struct JobResult {
    name: String,
    runs: usize,
    cycles: u64,
    wall_ns: u128,
}

impl JobResult {
    fn kilocycles_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        (self.cycles as f64 / 1_000.0) / (self.wall_ns as f64 / 1e9)
    }
}

/// Times one configuration over a workload suite: total simulated cycles
/// and total wall nanoseconds spent inside `Machine::run` (construction
/// and workload installation are excluded).
fn time_job(
    name: &str,
    cfg: &MachineConfig,
    mask: Option<VpMask>,
    workloads: &[Workload],
    reps: usize,
) -> JobResult {
    let mut best: Option<(u64, u128)> = None;
    for _ in 0..reps {
        let mut cycles = 0u64;
        let mut wall_ns = 0u128;
        for w in workloads {
            let mut machine = Machine::new(cfg).expect("benchmark configurations are valid");
            w.install(&mut machine);
            if let Some(mask) = mask {
                machine.set_vp_mask(mask);
            }
            let start = Instant::now();
            let res = machine
                .run(pl_bench::RUN_BUDGET)
                .unwrap_or_else(|e| panic!("workload `{}` on {name}: {e}", w.name));
            wall_ns += start.elapsed().as_nanos();
            cycles += res.cycles;
        }
        // Keep the fastest repetition: same cycle count every time
        // (deterministic), so min wall time is the cleanest estimate.
        best = match best {
            Some((c, ns)) if ns <= wall_ns => Some((c, ns)),
            _ => Some((cycles, wall_ns)),
        };
    }
    let (cycles, wall_ns) = best.expect("at least one repetition");
    let r = JobResult {
        name: name.to_string(),
        runs: workloads.len(),
        cycles,
        wall_ns,
    };
    println!(
        "{:<28} {:>12} cycles {:>9.1} ms {:>10.0} kc/s",
        r.name,
        r.cycles,
        r.wall_ns as f64 / 1e6,
        r.kilocycles_per_sec()
    );
    r
}

/// The Figure 1 job list for one suite: Unsafe, then Fence under each
/// cumulative VP mask.
fn suite_jobs(prefix: &str, base: &MachineConfig) -> Vec<(String, MachineConfig, Option<VpMask>)> {
    let mut unsafe_cfg = base.clone();
    unsafe_cfg.defense = DefenseScheme::Unsafe;
    unsafe_cfg.pinned_loads = PinnedLoadsConfig::with_mode(PinMode::Off);
    let mut fence = base.clone();
    fence.defense = DefenseScheme::Fence;
    fence.threat_model = ThreatModel::Comprehensive;
    fence.pinned_loads = PinnedLoadsConfig::with_mode(PinMode::Off);
    let mut jobs = vec![(format!("{prefix}/Unsafe"), unsafe_cfg, None)];
    for (label, mask) in VpMask::cumulative() {
        jobs.push((format!("{prefix}/Fence+{label}"), fence.clone(), Some(mask)));
    }
    jobs
}

fn write_json(path: &PathBuf, scale: Scale, reps: usize, results: &[JobResult]) {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results directory");
    }
    let mut f = std::fs::File::create(path).expect("create report file");
    let total_cycles: u64 = results.iter().map(|r| r.cycles).sum();
    let total_ns: u128 = results.iter().map(|r| r.wall_ns).sum();
    let total_kcps = if total_ns == 0 {
        0.0
    } else {
        (total_cycles as f64 / 1_000.0) / (total_ns as f64 / 1e9)
    };
    writeln!(f, "{{").unwrap();
    writeln!(f, "  \"bench\": \"kernel_throughput\",").unwrap();
    writeln!(f, "  \"unit\": \"kilocycles_per_sec\",").unwrap();
    writeln!(f, "  \"scale\": \"{scale:?}\",").unwrap();
    writeln!(f, "  \"reps\": {reps},").unwrap();
    writeln!(f, "  \"jobs\": [").unwrap();
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"name\": \"{}\", \"workloads\": {}, \"cycles\": {}, \
             \"wall_ms\": {:.3}, \"kilocycles_per_sec\": {:.1}}}{comma}",
            r.name,
            r.runs,
            r.cycles,
            r.wall_ns as f64 / 1e6,
            r.kilocycles_per_sec()
        )
        .unwrap();
    }
    writeln!(f, "  ],").unwrap();
    writeln!(
        f,
        "  \"total\": {{\"cycles\": {total_cycles}, \"wall_ms\": {:.3}, \
         \"kilocycles_per_sec\": {total_kcps:.1}}}",
        total_ns as f64 / 1e6
    )
    .unwrap();
    writeln!(f, "}}").unwrap();
    println!("\nwrote {}", path.display());
}

/// Reads `(job name, kc/s)` pairs back out of a report this binary
/// wrote earlier. Hand-rolled to match the hand-rolled writer: each job
/// is one line carrying both a `"name"` and a `"kilocycles_per_sec"`
/// field (the `"total"` line has no name and is skipped).
fn read_baseline(path: &PathBuf) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read baseline {}: {e}", path.display()));
    let mut jobs = Vec::new();
    for line in text.lines() {
        let Some(name_at) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else {
            continue;
        };
        let Some(kcps_at) = line.find("\"kilocycles_per_sec\": ") else {
            continue;
        };
        let num = line[kcps_at + 22..]
            .trim_end()
            .trim_end_matches(['}', ','])
            .trim();
        if let Ok(kcps) = num.parse::<f64>() {
            jobs.push((rest[..name_end].to_string(), kcps));
        }
    }
    jobs
}

/// The `--baseline` regression guard: fails (exit 1) if any `par*` job
/// (`par/*`, `par_spin/*`, `par_attack/*`) measured in this run fell
/// more than 20% below the same-named job in the baseline report.
fn guard_against(baseline_path: &PathBuf, results: &[JobResult]) {
    let baseline = read_baseline(baseline_path);
    assert!(
        !baseline.is_empty(),
        "baseline {} contains no jobs",
        baseline_path.display()
    );
    let mut checked = 0;
    let mut failed = false;
    for r in results.iter().filter(|r| r.name.starts_with("par")) {
        let Some((_, base_kcps)) = baseline.iter().find(|(n, _)| *n == r.name) else {
            continue;
        };
        checked += 1;
        let floor = base_kcps * 0.8;
        let got = r.kilocycles_per_sec();
        if got < floor {
            eprintln!(
                "THROUGHPUT REGRESSION: {} at {got:.0} kc/s is more than 20% below \
                 the committed baseline {base_kcps:.0} kc/s ({})",
                r.name,
                baseline_path.display()
            );
            failed = true;
        }
    }
    assert!(
        checked > 0,
        "baseline {} shares no par/* jobs with this run; guard checked nothing",
        baseline_path.display()
    );
    if failed {
        std::process::exit(1);
    }
    println!("throughput guard: {checked} par job(s) within 20% of baseline — OK");
}

fn main() {
    let mut scale = Scale::Test;
    let mut cores = 8usize;
    let mut reps = 3usize;
    let mut smoke = false;
    let mut no_spin_park = false;
    let mut baseline: Option<PathBuf> = None;
    let mut out = PathBuf::from("results/BENCH_kernel.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("bench") => Scale::Bench,
                    Some("full") => Scale::Full,
                    other => {
                        eprintln!("unknown scale {other:?}; use test|bench|full");
                        std::process::exit(2);
                    }
                };
            }
            "--cores" => {
                i += 1;
                cores = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--cores requires a number");
                    std::process::exit(2);
                });
            }
            "--reps" => {
                i += 1;
                reps = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&r: &usize| r >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--reps requires a number >= 1");
                        std::process::exit(2);
                    });
            }
            "--smoke" => smoke = true,
            "--no-spin-park" => no_spin_park = true,
            "--baseline" => {
                i += 1;
                baseline = Some(PathBuf::from(args.get(i).unwrap_or_else(|| {
                    eprintln!("--baseline requires a path");
                    std::process::exit(2);
                })));
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(args.get(i).unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "unknown flag {other}; supported: --scale test|bench|full, \
                     --cores N, --reps N, --smoke, --no-spin-park, \
                     --baseline PATH, --out PATH"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut single = MachineConfig::default_single_core();
    single.spin_parking = !no_spin_park;
    if no_spin_park {
        println!("spin parking disabled (--no-spin-park): ticking every awake core");
    }
    print_banner("Kernel throughput (fig1 sweep, serial)", &single);
    println!(
        "{:<28} {:>19} {:>12} {:>15}",
        "job", "simulated", "wall", "throughput"
    );

    let mut spec = spec_suite(scale);
    let mut results = Vec::new();
    let mut multi = MachineConfig::default_multi_core(cores);
    multi.spin_parking = !no_spin_park;
    if smoke {
        // CI smoke: one workload and one configuration per suite, one
        // repetition — proves both the single-core and the multicore
        // (event-calendar + directory + NoC) paths run end to end and
        // write a parseable report, and gives `--baseline` one job from
        // each par group (par, par_spin, par_attack) to guard.
        spec.truncate(1);
        for (name, cfg, mask) in suite_jobs("spec", &single).into_iter().take(1) {
            results.push(time_job(&name, &cfg, mask, &spec, 1));
        }
        let par = parallel_suite(cores, scale);
        let spin: Vec<Workload> = par
            .iter()
            .filter(|w| w.name == "spin_relay")
            .cloned()
            .collect();
        let mut par = par;
        par.truncate(1);
        for (name, cfg, mask) in suite_jobs("par", &multi).into_iter().take(1) {
            results.push(time_job(&name, &cfg, mask, &par, 1));
        }
        for (name, cfg, mask) in suite_jobs("par_spin", &multi).into_iter().take(1) {
            results.push(time_job(&name, &cfg, mask, &spin, 1));
        }
        let mut attack: Vec<Workload> = attack_suite(2).into_iter().map(|s| s.workload).collect();
        attack.truncate(1);
        for (name, cfg, mask) in suite_jobs("par_attack", &multi).into_iter().take(1) {
            results.push(time_job(&name, &cfg, mask, &attack, 1));
        }
    } else {
        for (name, cfg, mask) in suite_jobs("spec", &single) {
            results.push(time_job(&name, &cfg, mask, &spec, reps));
        }
        let par = parallel_suite(
            cores,
            if scale == Scale::Full {
                Scale::Bench
            } else {
                scale
            },
        );
        let spin: Vec<Workload> = par
            .iter()
            .filter(|w| w.name == "spin_relay")
            .cloned()
            .collect();
        for (name, cfg, mask) in suite_jobs("par", &multi) {
            results.push(time_job(&name, &cfg, mask, &par, reps));
        }
        // The spin-heavy kernel alone: the isolated measurement of the
        // spin-parking path (the mixed par jobs dilute it).
        for (name, cfg, mask) in suite_jobs("par_spin", &multi) {
            results.push(time_job(&name, &cfg, mask, &spin, reps));
        }
        // The attack gadget suite: attacker/victim pairs whose shadow
        // bursts and observer spin loops stress the squash/retain and
        // flag-polling paths, which the mixed par jobs barely touch.
        let attack: Vec<Workload> = attack_suite(2).into_iter().map(|s| s.workload).collect();
        for (name, cfg, mask) in suite_jobs("par_attack", &multi) {
            results.push(time_job(&name, &cfg, mask, &attack, reps));
        }
    }

    write_json(&out, scale, if smoke { 1 } else { reps }, &results);
    if let Some(baseline_path) = baseline {
        guard_against(&baseline_path, &results);
    }
}
