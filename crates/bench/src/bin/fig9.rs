//! Figure 9: breakdown of each scheme's Comprehensive-model overhead into
//! the four squash sources, next to the LP and EP overheads.
//!
//! Like Figure 1, the attribution comes from running each scheme with the
//! four cumulative VP masks; LP and EP columns come from the Table 3
//! extensions. Run with `cargo run --release -p pl-bench --bin fig9
//! [--scale ...] [--cores N] [--threads N]`.

use pl_base::{DefenseScheme, MachineConfig, PinMode, PinnedLoadsConfig, ThreatModel};
use pl_bench::{geo_overheads, print_banner, sweep_cpis, unsafe_cpis, SweepJob};
use pl_secure::VpMask;
use pl_workloads::{parallel_suite, spec_suite, Workload};

fn scheme_config(base: &MachineConfig, scheme: DefenseScheme) -> MachineConfig {
    let mut cfg = base.clone();
    cfg.defense = scheme;
    cfg.threat_model = ThreatModel::Comprehensive;
    cfg
}

fn suite_report(suite_name: &str, base: &MachineConfig, workloads: &[Workload], threads: usize) {
    let baselines = unsafe_cpis(base, workloads, threads);
    // Per scheme: four cumulative-mask jobs, then LP and EP. All schemes'
    // jobs go into one fan-out so the thread pool sees the whole suite.
    let masks = VpMask::cumulative();
    let mut jobs: Vec<SweepJob> = Vec::new();
    for scheme in DefenseScheme::PROTECTED {
        let cfg = scheme_config(base, scheme);
        for &(_, mask) in &masks {
            jobs.push((cfg.clone(), Some(mask)));
        }
        for mode in [PinMode::Late, PinMode::Early] {
            let mut pinned = cfg.clone();
            pinned.pinned_loads = PinnedLoadsConfig::with_mode(mode);
            jobs.push((pinned, None));
        }
    }
    let overheads = geo_overheads(&sweep_cpis(&jobs, workloads, threads), &baselines);
    let per_scheme = masks.len() + 2;
    for (si, scheme) in DefenseScheme::PROTECTED.into_iter().enumerate() {
        let block = &overheads[si * per_scheme..(si + 1) * per_scheme];
        println!("\n--- {scheme} / {suite_name} ---");
        let mut prev = 0.0;
        for ((label, _), &total) in masks.iter().zip(block) {
            println!(
                "  {label:<12} +{:>6.1}%  (cumulative {total:>6.1}%)",
                total - prev
            );
            prev = total;
        }
        println!("  {:<12}  {:>6.1}%", "LP", block[masks.len()]);
        println!("  {:<12}  {:>6.1}%", "EP", block[masks.len() + 1]);
    }
}

fn main() {
    let args = pl_bench::parse_args();
    let single = MachineConfig::default_single_core();
    print_banner(
        "Figure 9: overhead breakdown by squash source, with LP/EP",
        &single,
    );
    suite_report(
        "SPEC17-like",
        &single,
        &spec_suite(args.scale),
        args.threads,
    );
    let multi = MachineConfig::default_multi_core(args.cores);
    suite_report(
        &format!("Parallel ({} cores)", args.cores),
        &multi,
        &parallel_suite(args.cores, args.scale),
        args.threads,
    );
    println!(
        "\npaper reference: overhead under Comp is dominated by MCV, then Ctrl \
         Dep; LP and especially EP remove most of the MCV share."
    );
}
