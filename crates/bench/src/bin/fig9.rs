//! Figure 9: breakdown of each scheme's Comprehensive-model overhead into
//! the four squash sources, next to the LP and EP overheads.
//!
//! Like Figure 1, the attribution comes from running each scheme with the
//! four cumulative VP masks; LP and EP columns come from the Table 3
//! extensions. Run with
//! `cargo run --release -p pl-bench --bin fig9 [--scale ...] [--cores N]`.

use pl_base::{
    geo_mean, DefenseScheme, MachineConfig, PinMode, PinnedLoadsConfig, ThreatModel,
};
use pl_bench::{overhead_pct, print_banner, run_workload, unsafe_cpis};
use pl_machine::Machine;
use pl_secure::VpMask;
use pl_workloads::{parallel_suite, spec_suite, Workload};

fn masked_overhead(
    base: &MachineConfig,
    scheme: DefenseScheme,
    workloads: &[Workload],
    baselines: &[f64],
    mask: VpMask,
) -> f64 {
    let mut cfg = base.clone();
    cfg.defense = scheme;
    cfg.threat_model = ThreatModel::Comprehensive;
    let normalized: Vec<f64> = workloads
        .iter()
        .zip(baselines)
        .map(|(w, &unsafe_cpi)| {
            let mut m = Machine::new(&cfg).expect("valid config");
            w.install(&mut m);
            m.set_vp_mask(mask);
            let res = m
                .run(pl_bench::RUN_BUDGET)
                .unwrap_or_else(|e| panic!("`{}` under {scheme}/{mask}: {e}", w.name));
            res.cpi() / unsafe_cpi
        })
        .collect();
    overhead_pct(geo_mean(&normalized).expect("positive CPIs"))
}

fn pinned_overhead(
    base: &MachineConfig,
    scheme: DefenseScheme,
    mode: PinMode,
    workloads: &[Workload],
    baselines: &[f64],
) -> f64 {
    let mut cfg = base.clone();
    cfg.defense = scheme;
    cfg.threat_model = ThreatModel::Comprehensive;
    cfg.pinned_loads = PinnedLoadsConfig::with_mode(mode);
    let normalized: Vec<f64> = workloads
        .iter()
        .zip(baselines)
        .map(|(w, &unsafe_cpi)| run_workload(&cfg, w).cpi() / unsafe_cpi)
        .collect();
    overhead_pct(geo_mean(&normalized).expect("positive CPIs"))
}

fn suite_report(
    suite_name: &str,
    base: &MachineConfig,
    workloads: &[Workload],
) {
    let baselines = unsafe_cpis(base, workloads);
    for scheme in DefenseScheme::PROTECTED {
        let mut components = Vec::new();
        let mut prev = 0.0;
        for (label, mask) in VpMask::cumulative() {
            let total = masked_overhead(base, scheme, workloads, &baselines, mask);
            components.push((label, total - prev, total));
            prev = total;
        }
        let lp = pinned_overhead(base, scheme, PinMode::Late, workloads, &baselines);
        let ep = pinned_overhead(base, scheme, PinMode::Early, workloads, &baselines);
        println!("\n--- {scheme} / {suite_name} ---");
        for (label, delta, total) in &components {
            println!("  {label:<12} +{delta:>6.1}%  (cumulative {total:>6.1}%)");
        }
        println!("  {:<12}  {:>6.1}%", "LP", lp);
        println!("  {:<12}  {:>6.1}%", "EP", ep);
    }
}

fn main() {
    let (scale, cores) = pl_bench::parse_args();
    let single = MachineConfig::default_single_core();
    print_banner("Figure 9: overhead breakdown by squash source, with LP/EP", &single);
    suite_report("SPEC17-like", &single, &spec_suite(scale));
    let multi = MachineConfig::default_multi_core(cores);
    suite_report(
        &format!("Parallel ({cores} cores)"),
        &multi,
        &parallel_suite(cores, scale),
    );
    println!(
        "\npaper reference: overhead under Comp is dominated by MCV, then Ctrl \
         Dep; LP and especially EP remove most of the MCV share."
    );
}
