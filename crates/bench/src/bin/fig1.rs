//! Figure 1: the cost of each Visibility-Point condition.
//!
//! A Fence-defended processor releases loads at four cumulative points —
//! when no squash is possible due to branches (Ctrl Dep), + aliasing
//! (Alias Dep), + exceptions (Exception), + memory consistency violations
//! (MCV). The stacked difference between successive points attributes the
//! overhead to each condition; the paper finds MCV dominant.
//!
//! Run with `cargo run --release -p pl-bench --bin fig1 [--scale ...] [--cores N]`.

use pl_base::{geo_mean, DefenseScheme, MachineConfig, PinMode, PinnedLoadsConfig, ThreatModel};
use pl_bench::{overhead_pct, print_banner, unsafe_cpis};
use pl_machine::Machine;
use pl_secure::VpMask;
use pl_workloads::{parallel_suite, spec_suite, Scale, Workload};

fn masked_geo_overhead(
    base: &MachineConfig,
    workloads: &[Workload],
    baselines: &[f64],
    mask: VpMask,
) -> f64 {
    let mut cfg = base.clone();
    cfg.defense = DefenseScheme::Fence;
    cfg.threat_model = ThreatModel::Comprehensive;
    cfg.pinned_loads = PinnedLoadsConfig::with_mode(PinMode::Off);
    let normalized: Vec<f64> = workloads
        .iter()
        .zip(baselines)
        .map(|(w, &unsafe_cpi)| {
            let mut m = Machine::new(&cfg).expect("valid config");
            w.install(&mut m);
            m.set_vp_mask(mask);
            let res = m
                .run(pl_bench::RUN_BUDGET)
                .unwrap_or_else(|e| panic!("`{}` under {mask}: {e}", w.name));
            res.cpi() / unsafe_cpi
        })
        .collect();
    overhead_pct(geo_mean(&normalized).expect("positive CPIs"))
}

fn suite_breakdown(name: &str, base: &MachineConfig, workloads: &[Workload]) {
    let baselines = unsafe_cpis(base, workloads);
    println!("\n--- {name} ---");
    let mut prev = 0.0;
    for (label, mask) in VpMask::cumulative() {
        let total = masked_geo_overhead(base, workloads, &baselines, mask);
        println!(
            "{label:<12} total {total:>7.1}%   (+{:>6.1}% attributable to this condition)",
            total - prev
        );
        prev = total;
    }
}

fn main() {
    let (scale, cores) = pl_bench::parse_args();
    let single = MachineConfig::default_single_core();
    print_banner("Figure 1: VP-condition overhead breakdown (Fence)", &single);

    suite_breakdown("SPEC17-like (1 core)", &single, &spec_suite(scale));

    let multi = MachineConfig::default_multi_core(cores);
    let par = parallel_suite(cores, if scale == Scale::Full { Scale::Bench } else { scale });
    suite_breakdown(&format!("SPLASH2/PARSEC-like ({cores} cores)"), &multi, &par);

    println!("\npaper reference: MCV is by far the largest component, then Ctrl Dep.");
}
