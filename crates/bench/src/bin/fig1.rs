//! Figure 1: the cost of each Visibility-Point condition.
//!
//! A Fence-defended processor releases loads at four cumulative points —
//! when no squash is possible due to branches (Ctrl Dep), + aliasing
//! (Alias Dep), + exceptions (Exception), + memory consistency violations
//! (MCV). The stacked difference between successive points attributes the
//! overhead to each condition; the paper finds MCV dominant.
//!
//! Run with `cargo run --release -p pl-bench --bin fig1
//! [--scale ...] [--cores N] [--threads N]`.

use pl_base::{DefenseScheme, MachineConfig, PinMode, PinnedLoadsConfig, ThreatModel};
use pl_bench::{geo_overheads, print_banner, sweep_cpis, unsafe_cpis, SweepJob};
use pl_secure::VpMask;
use pl_workloads::{parallel_suite, spec_suite, Scale, Workload};

fn suite_breakdown(name: &str, base: &MachineConfig, workloads: &[Workload], threads: usize) {
    let baselines = unsafe_cpis(base, workloads, threads);
    let mut cfg = base.clone();
    cfg.defense = DefenseScheme::Fence;
    cfg.threat_model = ThreatModel::Comprehensive;
    cfg.pinned_loads = PinnedLoadsConfig::with_mode(PinMode::Off);
    // One job per cumulative VP mask, the whole set fanned out at once.
    let jobs: Vec<SweepJob> = VpMask::cumulative()
        .iter()
        .map(|&(_, mask)| (cfg.clone(), Some(mask)))
        .collect();
    let totals = geo_overheads(&sweep_cpis(&jobs, workloads, threads), &baselines);
    println!("\n--- {name} ---");
    let mut prev = 0.0;
    for ((label, _), &total) in VpMask::cumulative().iter().zip(&totals) {
        println!(
            "{label:<12} total {total:>7.1}%   (+{:>6.1}% attributable to this condition)",
            total - prev
        );
        prev = total;
    }
}

fn main() {
    let args = pl_bench::parse_args();
    let single = MachineConfig::default_single_core();
    print_banner("Figure 1: VP-condition overhead breakdown (Fence)", &single);

    suite_breakdown(
        "SPEC17-like (1 core)",
        &single,
        &spec_suite(args.scale),
        args.threads,
    );

    let multi = MachineConfig::default_multi_core(args.cores);
    let par = parallel_suite(
        args.cores,
        if args.scale == Scale::Full {
            Scale::Bench
        } else {
            args.scale
        },
    );
    suite_breakdown(
        &format!("SPLASH2/PARSEC-like ({} cores)", args.cores),
        &multi,
        &par,
        args.threads,
    );

    println!("\npaper reference: MCV is by far the largest component, then Ctrl Dep.");
}
