//! Figure 2: load overlap in the ROB under each design.
//!
//! The paper's conceptual figure contrasts a conventional processor,
//! a safe processor, and safe + Late/Early Pinning on (a) independent
//! loads and (b) a chain containing a dependent load. This harness makes
//! the figure quantitative: it runs batches of cache-missing loads and
//! reports cycles per batch, showing that EP restores the overlap of the
//! unsafe processor for independent loads (Fig. 2(f)) but cannot help a
//! dependent chain (Fig. 2(g)/(h)), while LP serializes misses
//! (Fig. 2(c)-(e)).
//!
//! Alongside the aggregate table, it re-runs a tiny batch of each
//! microbenchmark with event tracing enabled and renders Konata-style
//! pipeviews from the *real* pipeline events (dispatch/issue/complete/
//! retire/squash), plus a Chrome-trace JSON per configuration under
//! `results/` for chrome://tracing / Perfetto.
//!
//! Run with `cargo run --release -p pl-bench --bin fig2_timeline [--threads N]`.

use std::path::PathBuf;

use pl_base::{Addr, CoreId, DefenseScheme, MachineConfig, SimRng, TraceConfig};
use pl_bench::{
    extension_matrix, print_banner, run_workload, sweep_results, unsafe_config, SweepJob,
};
use pl_isa::{AluOp, BranchCond, ProgramBuilder, Reg};
use pl_workloads::Workload;

fn r(i: u8) -> Reg {
    Reg::new(i).expect("valid register")
}

/// Batches of three *independent* missing loads (Figure 2(a)-(f)).
fn independent_loads(batches: u64) -> Workload {
    const BASE: i64 = 0x10_0000;
    let mut b = ProgramBuilder::new();
    let top = b.new_label();
    b.addi(r(1), Reg::ZERO, BASE);
    b.addi(r(2), Reg::ZERO, batches as i64);
    b.bind(top).unwrap();
    b.load(r(10), r(1), 0);
    b.load(r(11), r(1), 4096);
    b.load(r(12), r(1), 8192);
    b.addi(r(1), r(1), 64);
    b.addi(r(2), r(2), -1);
    b.branch(BranchCond::Ne, r(2), Reg::ZERO, top);
    Workload {
        name: "independent".into(),
        programs: vec![b.build().expect("builds")],
        init_mem: vec![],
        init_regs: vec![vec![]],
    }
}

/// Batches where the second load's address depends on the first
/// (Figure 2(g)/(h)): ld1 -> ld2(dependent) plus an independent ld3.
fn dependent_chain(batches: u64) -> Workload {
    const PTR_BASE: u64 = 0x20_0000;
    const DATA_BASE: i64 = 0x40_0000;
    // Pointer table: entry i holds a pseudo-random line index.
    let mut rng = SimRng::new(7);
    let init_mem: Vec<(Addr, u64)> = (0..4096u64)
        .map(|i| {
            (
                Addr::new(PTR_BASE + i * 64),
                DATA_BASE as u64 + rng.gen_range(0..4096) * 64,
            )
        })
        .collect();
    let mut b = ProgramBuilder::new();
    let top = b.new_label();
    b.addi(r(1), Reg::ZERO, PTR_BASE as i64);
    b.addi(r(2), Reg::ZERO, batches as i64);
    b.bind(top).unwrap();
    b.load(r(10), r(1), 0); // ld1
    b.load(r(11), r(10), 0); // ld2 depends on ld1's value
    b.load(r(12), r(1), 8192); // ld3 independent
    b.alu(AluOp::Add, r(20), r(11), r(12));
    b.addi(r(1), r(1), 64);
    b.addi(r(2), r(2), -1);
    b.branch(BranchCond::Ne, r(2), Reg::ZERO, top);
    Workload {
        name: "dependent".into(),
        programs: vec![b.build().expect("builds")],
        init_mem,
        init_regs: vec![vec![]],
    }
}

fn main() {
    let args = pl_bench::parse_args();
    let batches = 500 * args.scale.factor();
    let base = MachineConfig::default_single_core();
    print_banner("Figure 2: load overlap timelines (Fence-based)", &base);
    let workloads = [independent_loads(batches), dependent_chain(batches)];

    // Unsafe plus the four Fence extensions, across both microbenchmarks,
    // in one fan-out.
    let mut labels = vec!["Unsafe"];
    let mut jobs: Vec<SweepJob> = vec![(unsafe_config(&base), None)];
    for (label, cfg) in extension_matrix(&base, DefenseScheme::Fence) {
        labels.push(label);
        jobs.push((cfg, None));
    }
    let results = sweep_results(&jobs, &workloads, args.threads);

    for (wi, w) in workloads.iter().enumerate() {
        println!("\n--- {} loads, cycles per 3-load batch ---", w.name);
        let unsafe_res = &results[0][wi];
        let batches = (unsafe_res.retired_per_core[CoreId(0).index()] / 6).max(1);
        for (ji, label) in labels.iter().enumerate() {
            let res = &results[ji][wi];
            println!("{label:<12} {:>8.1}", res.cycles as f64 / batches as f64);
        }
    }
    println!(
        "\nreading the figure: for independent loads EP approaches Unsafe \
         (loads overlap, Fig. 2(f)) while Comp serializes them near the ROB \
         head (Fig. 2(b)); for the dependent chain even EP cannot overlap \
         ld2/ld3 with ld1 (Fig. 2(g)/(h))."
    );

    render_traced_timelines(&base);
}

/// Re-runs three batches of each microbenchmark with tracing on and
/// renders the timelines from real pipeline events: a pipeview per
/// configuration (the quantitative Figure 2) plus a Chrome-trace JSON
/// export under `results/`.
fn render_traced_timelines(base: &MachineConfig) {
    let out_dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"));
    let _ = std::fs::create_dir_all(&out_dir);

    let mut configs: Vec<(&str, MachineConfig)> = vec![("Unsafe", unsafe_config(base))];
    for (label, cfg) in extension_matrix(base, DefenseScheme::Fence) {
        configs.push((label, cfg));
    }
    for (wi, workload) in [independent_loads(3), dependent_chain(3)]
        .iter()
        .enumerate()
    {
        println!(
            "\n--- {} loads, traced pipeview (3 batches; D=dispatch I=issue \
             C=complete R=retire x=squash) ---",
            workload.name
        );
        for (label, cfg) in &configs {
            let mut cfg = cfg.clone();
            cfg.trace = TraceConfig::enabled();
            let res = run_workload(&cfg, workload);
            let log = res.trace.expect("tracing was enabled");
            println!(
                "\n[{label}] core 0, {} events, {} cycles:",
                log.records.len(),
                res.cycles
            );
            print!("{}", log.pipeview(0, 64));
            if wi == 0 {
                let path = out_dir.join(format!("fig2_trace_{}.json", label.to_lowercase()));
                match std::fs::write(&path, log.chrome_trace()) {
                    Ok(()) => println!("  chrome-trace: {}", path.display()),
                    Err(e) => eprintln!("  chrome-trace export failed: {e}"),
                }
            }
        }
    }
}
