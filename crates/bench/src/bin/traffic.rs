//! Section 9.1.3: network traffic overhead of Pinned Loads.
//!
//! Reports, per scheme and pin mode on the parallel suite: total NoC
//! messages relative to the unextended scheme, plus the write retries and
//! eviction retries caused by pinning, per million instructions. The
//! paper's worst case is 14.8 retried writes and 0.05 retried evictions
//! per million instructions.
//!
//! Run with `cargo run --release -p pl-bench --bin traffic [--scale ...] [--cores N]`.

use pl_base::{DefenseScheme, MachineConfig};
use pl_bench::{extension_matrix, print_banner, run_workload};
use pl_workloads::parallel_suite;

fn main() {
    let (scale, cores) = pl_bench::parse_args();
    let base = MachineConfig::default_multi_core(cores);
    print_banner("Section 9.1.3: network traffic overhead", &base);
    let workloads = parallel_suite(cores, scale);

    for scheme in DefenseScheme::PROTECTED {
        println!("\n--- {scheme} ---");
        println!(
            "{:<16} {:>6} {:>12} {:>16} {:>18}",
            "benchmark", "mode", "noc msgs", "wr retries/Mi", "evict retries/Mi"
        );
        for w in &workloads {
            let mut comp_msgs = 0u64;
            for (label, cfg) in extension_matrix(&base, scheme) {
                if label == "Spectre" {
                    continue;
                }
                let res = run_workload(&cfg, w);
                let insts = res.total_retired().max(1) as f64 / 1.0e6;
                let msgs = res.stats.get("noc.messages");
                if label == "Comp" {
                    comp_msgs = msgs.max(1);
                }
                let wr = res.stats.get("wb.writes_retried") as f64 / insts;
                let ev = (res.stats.get("llc.evictions_retried")
                    + res.stats.get("llc.evictions_denied")) as f64
                    / insts;
                println!(
                    "{:<16} {:>6} {:>11.2}x {:>16.2} {:>18.3}",
                    w.name,
                    label,
                    msgs as f64 / comp_msgs as f64,
                    wr,
                    ev
                );
            }
        }
    }
    println!(
        "\npaper reference: no significant traffic impact; worst case 14.8 \
         retried writes and 0.05 retried evictions per million instructions."
    );
}
