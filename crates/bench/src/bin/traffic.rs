//! Section 9.1.3: network traffic overhead of Pinned Loads.
//!
//! Reports, per scheme and pin mode on the parallel suite: total NoC
//! messages relative to the unextended scheme, plus the write retries and
//! eviction retries caused by pinning, per million instructions. The
//! paper's worst case is 14.8 retried writes and 0.05 retried evictions
//! per million instructions.
//!
//! Run with `cargo run --release -p pl-bench --bin traffic
//! [--scale ...] [--cores N] [--threads N]`.

use pl_base::{DefenseScheme, MachineConfig};
use pl_bench::{extension_matrix, print_banner, sweep_results, SweepJob};
use pl_workloads::parallel_suite;

fn main() {
    let args = pl_bench::parse_args();
    let base = MachineConfig::default_multi_core(args.cores);
    print_banner("Section 9.1.3: network traffic overhead", &base);
    let workloads = parallel_suite(args.cores, args.scale);

    // The Comp/LP/EP columns for every scheme, fanned out in one sweep
    // (the Spectre column is not part of the traffic table).
    let mut labels = Vec::new();
    let mut jobs: Vec<SweepJob> = Vec::new();
    for scheme in DefenseScheme::PROTECTED {
        for (label, cfg) in extension_matrix(&base, scheme) {
            if label == "Spectre" {
                continue;
            }
            labels.push(label);
            jobs.push((cfg, None));
        }
    }
    let results = sweep_results(&jobs, &workloads, args.threads);
    let modes = labels.len() / DefenseScheme::PROTECTED.len();

    for (si, scheme) in DefenseScheme::PROTECTED.into_iter().enumerate() {
        println!("\n--- {scheme} ---");
        println!(
            "{:<16} {:>6} {:>12} {:>16} {:>18}",
            "benchmark", "mode", "noc msgs", "wr retries/Mi", "evict retries/Mi"
        );
        for (wi, w) in workloads.iter().enumerate() {
            let mut comp_msgs = 0u64;
            for mi in 0..modes {
                let label = labels[si * modes + mi];
                let res = &results[si * modes + mi][wi];
                let insts = res.total_retired().max(1) as f64 / 1.0e6;
                let msgs = res.stats.get("noc.messages");
                if label == "Comp" {
                    comp_msgs = msgs.max(1);
                }
                let wr = res.stats.get("wb.writes_retried") as f64 / insts;
                let ev = (res.stats.get("llc.evictions_retried")
                    + res.stats.get("llc.evictions_denied")) as f64
                    / insts;
                println!(
                    "{:<16} {:>6} {:>11.2}x {:>16.2} {:>18.3}",
                    w.name,
                    label,
                    msgs as f64 / comp_msgs as f64,
                    wr,
                    ev
                );
            }
        }
    }
    println!(
        "\npaper reference: no significant traffic impact; worst case 14.8 \
         retried writes and 0.05 retried evictions per million instructions."
    );
}
