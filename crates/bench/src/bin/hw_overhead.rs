//! Section 9.2.4: hardware overhead of the Pinned Loads structures.
//!
//! Storage bytes are exact reproductions of the paper's accounting (the
//! default CSTs come out to 444 and 370 bytes); area, read energy, and
//! leakage are modeled by scaling the paper's CACTI 7.0 / 22 nm anchors
//! (see `pl_secure::hw_cost`).
//!
//! Run with `cargo run --release -p pl-bench --bin hw_overhead`.

use pl_base::MachineConfig;
use pl_secure::hw_cost::{
    cpt_cost, dir_cst_cost, l1_cst_cost, lq_tag_extension_bytes, total_per_core_bytes,
};

fn main() {
    let cfg = MachineConfig::default_single_core();
    let cst = &cfg.pinned_loads.cst;
    println!("== Section 9.2.4: Pinned Loads hardware overhead (per core) ==");
    println!(
        "{:<22} {:>8} {:>12} {:>14} {:>12}",
        "structure", "bytes", "area (mm2)", "read E (pJ)", "leak (mW)"
    );
    let l1 = l1_cst_cost(cst);
    println!(
        "{:<22} {:>8} {:>12.4} {:>14.2} {:>12.2}",
        format!("L1 CST ({}x{})", cst.l1_entries, cst.l1_records),
        l1.bytes,
        l1.area_mm2,
        l1.read_energy_pj,
        l1.leakage_mw
    );
    let dir = dir_cst_cost(cst);
    println!(
        "{:<22} {:>8} {:>12.4} {:>14.2} {:>12.2}",
        format!("Dir/LLC CST ({}x{})", cst.dir_entries, cst.dir_records),
        dir.bytes,
        dir.area_mm2,
        dir.read_energy_pj,
        dir.leakage_mw
    );
    let cpt = cpt_cost(cfg.pinned_loads.cpt.entries);
    println!(
        "{:<22} {:>8} {:>12} {:>14} {:>12}",
        format!("CPT ({} entries)", cfg.pinned_loads.cpt.entries),
        cpt.bytes,
        "negl.",
        "negl.",
        "negl."
    );
    let lq = lq_tag_extension_bytes(cfg.core.lq_entries, cfg.pinned_loads.lq_id_tag_bits);
    println!(
        "{:<22} {:>8} {:>12} {:>14} {:>12}",
        format!("LQ tag ext ({} bits)", cfg.pinned_loads.lq_id_tag_bits),
        lq,
        "negl.",
        "negl.",
        "negl."
    );
    let mut ep_cfg = cfg.clone();
    ep_cfg.pinned_loads.mode = pl_base::PinMode::Early;
    println!(
        "\ntotal per core (Early Pinning): {} bytes",
        total_per_core_bytes(&ep_cfg)
    );
    println!(
        "paper reference: L1 CST 444 B / 0.0008 mm2 / 0.6 pJ / 0.17 mW; \
         Dir/LLC CST 370 B / 0.0005 mm2 / 0.4 pJ / 0.17 mW."
    );
}
