//! Section 9.2.1: Cache Shadow Table sensitivity.
//!
//! Sweeps CST sizes under Early Pinning, reporting the false-positive
//! rate of each table (pin denials with real capacity available) and the
//! execution-overhead delta versus an infinite (ideal) CST. The paper's
//! default (L1: 12x8, Dir/LLC: 40x2) shows false-positive rates below
//! 0.4% and overhead within 3.6% of ideal.
//!
//! Run with `cargo run --release -p pl-bench --bin cst_sensitivity
//! [--scale ...] [--threads N]`.

use pl_base::{geo_mean, DefenseScheme, MachineConfig, PinMode, PinnedLoadsConfig};
use pl_bench::{overhead_pct, print_banner, sweep_results, unsafe_cpis, SweepJob};
use pl_machine::RunResult;
use pl_workloads::{spec_suite, Workload};

struct CstPoint {
    label: &'static str,
    ideal: bool,
    l1: (usize, usize),
    dir: (usize, usize),
}

const POINTS: &[CstPoint] = &[
    CstPoint {
        label: "ideal",
        ideal: true,
        l1: (12, 8),
        dir: (40, 2),
    },
    CstPoint {
        label: "default 12x8/40x2",
        ideal: false,
        l1: (12, 8),
        dir: (40, 2),
    },
    CstPoint {
        label: "half 6x8/20x2",
        ideal: false,
        l1: (6, 8),
        dir: (20, 2),
    },
    CstPoint {
        label: "quarter 3x8/10x2",
        ideal: false,
        l1: (3, 8),
        dir: (10, 2),
    },
    CstPoint {
        label: "tiny 2x4/4x2",
        ideal: false,
        l1: (2, 4),
        dir: (4, 2),
    },
];

fn config_for(base: &MachineConfig, scheme: DefenseScheme, p: &CstPoint) -> MachineConfig {
    let mut cfg = base.clone();
    cfg.defense = scheme;
    cfg.pinned_loads = PinnedLoadsConfig::with_mode(PinMode::Early);
    cfg.pinned_loads.ideal_cst = p.ideal;
    cfg.pinned_loads.cst.l1_entries = p.l1.0;
    cfg.pinned_loads.cst.l1_records = p.l1.1;
    cfg.pinned_loads.cst.dir_entries = p.dir.0;
    cfg.pinned_loads.cst.dir_records = p.dir.1;
    cfg
}

fn rate(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

fn report(scheme: DefenseScheme, per_point: &[Vec<RunResult>], baselines: &[f64]) {
    println!("\n--- {scheme} + EP ---");
    println!(
        "{:<20} {:>10} {:>12} {:>12} {:>14}",
        "CST size", "overhead", "L1 fp rate", "dir fp rate", "vs ideal"
    );
    let mut ideal_overhead = None;
    for (p, results) in POINTS.iter().zip(per_point) {
        let mut normalized = Vec::new();
        let mut l1_fp = 0u64;
        let mut l1_lookups = 0u64;
        let mut dir_fp = 0u64;
        let mut dir_lookups = 0u64;
        for (res, &unsafe_cpi) in results.iter().zip(baselines) {
            normalized.push(res.cpi() / unsafe_cpi);
            l1_fp += res.stats.get("pin.cst_l1_false_positives");
            l1_lookups += res.stats.get("pin.cst_l1_lookups");
            dir_fp += res.stats.get("pin.cst_dir_false_positives");
            dir_lookups += res.stats.get("pin.cst_dir_lookups");
        }
        let overhead = overhead_pct(geo_mean(&normalized).expect("positive"));
        if p.ideal {
            ideal_overhead = Some(overhead);
        }
        let delta = ideal_overhead.map_or(0.0, |i| overhead - i);
        println!(
            "{:<20} {:>9.1}% {:>11.3}% {:>11.3}% {:>+13.1}pp",
            p.label,
            overhead,
            rate(l1_fp, l1_lookups),
            rate(dir_fp, dir_lookups),
            delta
        );
    }
}

fn main() {
    let args = pl_bench::parse_args();
    let base = MachineConfig::default_single_core();
    print_banner("Section 9.2.1: CST sensitivity", &base);
    let workloads: Vec<Workload> = spec_suite(args.scale);
    let baselines = unsafe_cpis(&base, &workloads, args.threads);
    // All scheme × CST-point jobs fan out in one sweep.
    let mut jobs: Vec<SweepJob> = Vec::new();
    for scheme in DefenseScheme::PROTECTED {
        for p in POINTS {
            jobs.push((config_for(&base, scheme, p), None));
        }
    }
    let results = sweep_results(&jobs, &workloads, args.threads);
    for (si, scheme) in DefenseScheme::PROTECTED.into_iter().enumerate() {
        report(
            scheme,
            &results[si * POINTS.len()..(si + 1) * POINTS.len()],
            &baselines,
        );
    }
    println!(
        "\npaper reference: default CST false positives < 0.02% (L1) and \
         < 0.4% (dir) on SPEC17; chosen sizes within 3.6% of an infinite CST."
    );
}
