//! Figure 8: normalized CPI of the SPLASH2/PARSEC-like parallel suite on
//! every defense scheme under Comp / LP / EP / Spectre.
//!
//! Run with `cargo run --release -p pl-bench --bin fig8
//! [--scale ...] [--cores N] [--threads N]`.

use pl_base::{DefenseScheme, MachineConfig};
use pl_bench::{print_banner, print_scheme_table, scheme_matrix_rows, unsafe_cpis};
use pl_workloads::parallel_suite;

fn main() {
    let args = pl_bench::parse_args();
    let base = MachineConfig::default_multi_core(args.cores);
    print_banner("Figure 8: SPLASH2/PARSEC-like suite, normalized CPI", &base);
    let workloads = parallel_suite(args.cores, args.scale);
    let names: Vec<String> = workloads.iter().map(|w| w.name.clone()).collect();
    let baselines = unsafe_cpis(&base, &workloads, args.threads);
    let schemes = DefenseScheme::PROTECTED;
    let per_scheme = scheme_matrix_rows(&base, &schemes, &workloads, &baselines, args.threads);
    for (scheme, rows) in schemes.iter().zip(&per_scheme) {
        print_scheme_table(*scheme, &names, rows);
    }
    println!(
        "\npaper reference (geo-mean overheads, SPLASH2/PARSEC): \
         Fence 113.1/51.2/46.4/31.1%  DOM 15.8/12.7/7.6/4.2%  STT 11.3/8.7/8.1/5.1%"
    );
}
