//! Ablations of design choices DESIGN.md calls out.
//!
//! 1. **Write-buffer size** — the Section 5.1.2 pinning condition demands
//!    every yet-to-complete older store fit the write buffer; a small
//!    buffer throttles pinning (and retirement), a large one stops
//!    mattering.
//! 2. **MSHR count** — Early Pinning's benefit is memory-level
//!    parallelism on pinned loads, which the MSHR file caps.
//! 3. **Oldest-load exemption** — the aggressive TSO implementation
//!    (Section 2) lets the oldest load issue before pinning; disabling it
//!    approximates the conservative Intel-style design. (Modeled by
//!    comparing LP, which leans on the exemption, against EP, which does
//!    not need it.)
//!
//! Run with `cargo run --release -p pl-bench --bin ablation [--scale ...]`.

use pl_base::{geo_mean, DefenseScheme, MachineConfig, PinMode, PinnedLoadsConfig};
use pl_bench::{overhead_pct, print_banner, run_workload, unsafe_cpis};
use pl_workloads::{spec_suite, Workload};

fn ep_overhead_with(
    mutate: impl Fn(&mut MachineConfig),
    workloads: &[Workload],
    baselines: &[f64],
) -> f64 {
    let mut cfg = MachineConfig::default_single_core();
    cfg.defense = DefenseScheme::Fence;
    cfg.pinned_loads = PinnedLoadsConfig::with_mode(PinMode::Early);
    mutate(&mut cfg);
    cfg.validate().expect("ablation config is valid");
    let normalized: Vec<f64> = workloads
        .iter()
        .zip(baselines)
        .map(|(w, &b)| run_workload(&cfg, w).cpi() / b)
        .collect();
    overhead_pct(geo_mean(&normalized).expect("positive CPIs"))
}

fn main() {
    let (scale, _) = pl_bench::parse_args();
    let base = MachineConfig::default_single_core();
    print_banner("Ablations (Fence+EP, SPEC17-like suite)", &base);
    // Use a store-heavy subset plus a miss-heavy one so both knobs bind.
    let workloads: Vec<Workload> = spec_suite(scale)
        .into_iter()
        .filter(|w| ["stream", "write_burst", "stencil_rw", "gather"].contains(&w.name.as_str()))
        .collect();
    let baselines = unsafe_cpis(&base, &workloads);

    println!("\n--- write-buffer entries (Section 5.1.2 pinning bound) ---");
    for wb in [2usize, 4, 8, 16, 32] {
        let o = ep_overhead_with(|c| c.core.write_buffer_entries = wb, &workloads, &baselines);
        println!("  WB = {wb:>2}   overhead {o:>7.1}%");
    }

    println!("\n--- L1 MSHR entries (memory-level parallelism cap) ---");
    for mshrs in [1usize, 2, 4, 8, 16] {
        let o = ep_overhead_with(|c| c.mem.l1d.mshr_entries = mshrs, &workloads, &baselines);
        println!("  MSHRs = {mshrs:>2}   overhead {o:>7.1}%");
    }

    println!("\n--- TSO implementation: aggressive vs conservative (Section 2) ---");
    for mode in [PinMode::Off, PinMode::Late, PinMode::Early] {
        for conservative in [false, true] {
            let mut cfg = base.clone();
            cfg.defense = DefenseScheme::Fence;
            cfg.core.conservative_tso = conservative;
            cfg.pinned_loads = PinnedLoadsConfig::with_mode(mode);
            let normalized: Vec<f64> = workloads
                .iter()
                .zip(&baselines)
                .map(|(w, &b)| run_workload(&cfg, w).cpi() / b)
                .collect();
            println!(
                "  {mode:?} / {}: overhead {:>7.1}%",
                if conservative { "conservative" } else { "aggressive " },
                overhead_pct(geo_mean(&normalized).expect("positive"))
            );
        }
    }
    println!(
        "\nexpected: overhead falls as the write buffer grows (the pin \
         condition stops binding) and as MSHRs grow (EP can actually \
         overlap misses), saturating near the defaults."
    );
}
