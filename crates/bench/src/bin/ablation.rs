//! Ablations of design choices DESIGN.md calls out.
//!
//! 1. **Write-buffer size** — the Section 5.1.2 pinning condition demands
//!    every yet-to-complete older store fit the write buffer; a small
//!    buffer throttles pinning (and retirement), a large one stops
//!    mattering.
//! 2. **MSHR count** — Early Pinning's benefit is memory-level
//!    parallelism on pinned loads, which the MSHR file caps.
//! 3. **Oldest-load exemption** — the aggressive TSO implementation
//!    (Section 2) lets the oldest load issue before pinning; disabling it
//!    approximates the conservative Intel-style design. (Modeled by
//!    comparing LP, which leans on the exemption, against EP, which does
//!    not need it.)
//!
//! Run with `cargo run --release -p pl-bench --bin ablation
//! [--scale ...] [--threads N]`.

use pl_base::{DefenseScheme, MachineConfig, PinMode, PinnedLoadsConfig};
use pl_bench::{geo_overheads, print_banner, sweep_cpis, unsafe_cpis, SweepJob};
use pl_workloads::{spec_suite, Workload};

fn ep_config(mutate: impl Fn(&mut MachineConfig)) -> MachineConfig {
    let mut cfg = MachineConfig::default_single_core();
    cfg.defense = DefenseScheme::Fence;
    cfg.pinned_loads = PinnedLoadsConfig::with_mode(PinMode::Early);
    mutate(&mut cfg);
    cfg.validate().expect("ablation config is valid");
    cfg
}

fn main() {
    let args = pl_bench::parse_args();
    let base = MachineConfig::default_single_core();
    print_banner("Ablations (Fence+EP, SPEC17-like suite)", &base);
    // Use a store-heavy subset plus a miss-heavy one so both knobs bind.
    let workloads: Vec<Workload> = spec_suite(args.scale)
        .into_iter()
        .filter(|w| ["stream", "write_burst", "stencil_rw", "gather"].contains(&w.name.as_str()))
        .collect();
    let baselines = unsafe_cpis(&base, &workloads, args.threads);

    println!("\n--- write-buffer entries (Section 5.1.2 pinning bound) ---");
    let wbs = [2usize, 4, 8, 16, 32];
    let jobs: Vec<SweepJob> = wbs
        .iter()
        .map(|&wb| (ep_config(|c| c.core.write_buffer_entries = wb), None))
        .collect();
    let overheads = geo_overheads(&sweep_cpis(&jobs, &workloads, args.threads), &baselines);
    for (wb, o) in wbs.iter().zip(&overheads) {
        println!("  WB = {wb:>2}   overhead {o:>7.1}%");
    }

    println!("\n--- L1 MSHR entries (memory-level parallelism cap) ---");
    let mshr_counts = [1usize, 2, 4, 8, 16];
    let jobs: Vec<SweepJob> = mshr_counts
        .iter()
        .map(|&m| (ep_config(|c| c.mem.l1d.mshr_entries = m), None))
        .collect();
    let overheads = geo_overheads(&sweep_cpis(&jobs, &workloads, args.threads), &baselines);
    for (mshrs, o) in mshr_counts.iter().zip(&overheads) {
        println!("  MSHRs = {mshrs:>2}   overhead {o:>7.1}%");
    }

    println!("\n--- TSO implementation: aggressive vs conservative (Section 2) ---");
    let mut points = Vec::new();
    for mode in [PinMode::Off, PinMode::Late, PinMode::Early] {
        for conservative in [false, true] {
            points.push((mode, conservative));
        }
    }
    let jobs: Vec<SweepJob> = points
        .iter()
        .map(|&(mode, conservative)| {
            let mut cfg = base.clone();
            cfg.defense = DefenseScheme::Fence;
            cfg.core.conservative_tso = conservative;
            cfg.pinned_loads = PinnedLoadsConfig::with_mode(mode);
            (cfg, None)
        })
        .collect();
    let overheads = geo_overheads(&sweep_cpis(&jobs, &workloads, args.threads), &baselines);
    for (&(mode, conservative), o) in points.iter().zip(&overheads) {
        println!(
            "  {mode:?} / {}: overhead {o:>7.1}%",
            if conservative {
                "conservative"
            } else {
                "aggressive "
            },
        );
    }
    println!(
        "\nexpected: overhead falls as the write buffer grows (the pin \
         condition stops binding) and as MSHRs grow (EP can actually \
         overlap misses), saturating near the defaults."
    );
}
