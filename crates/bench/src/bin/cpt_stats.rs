//! Section 9.2.2: Cannot-Pin Table occupancy.
//!
//! Runs the parallel suite with an ideal (unbounded) CPT to measure true
//! occupancy, then with the default 4-entry CPT to measure overflow rate.
//! The paper finds the CPT holds one line on average, 4–7 at peak, and
//! overflows fewer than 0.0001 times per insert attempt.
//!
//! Run with `cargo run --release -p pl-bench --bin cpt_stats
//! [--scale ...] [--cores N] [--threads N]`.

use pl_base::{DefenseScheme, MachineConfig, PinMode, PinnedLoadsConfig};
use pl_bench::{print_banner, sweep_results, SweepJob};
use pl_workloads::parallel_suite;

fn main() {
    let args = pl_bench::parse_args();
    let base = MachineConfig::default_multi_core(args.cores);
    print_banner("Section 9.2.2: CPT occupancy", &base);
    let workloads = parallel_suite(args.cores, args.scale);

    // For each (scheme, mode): one ideal-CPT job (true occupancy) and one
    // default-CPT job (overflow behavior). All jobs fan out at once.
    let mut points = Vec::new();
    let mut jobs: Vec<SweepJob> = Vec::new();
    for scheme in DefenseScheme::PROTECTED {
        for mode in [PinMode::Late, PinMode::Early] {
            let mut ideal = base.clone();
            ideal.defense = scheme;
            ideal.pinned_loads = PinnedLoadsConfig::with_mode(mode);
            ideal.pinned_loads.ideal_cpt = true;
            let mut real = ideal.clone();
            real.pinned_loads.ideal_cpt = false;
            points.push((scheme, mode, jobs.len()));
            jobs.push((ideal, None));
            jobs.push((real, None));
        }
    }
    let results = sweep_results(&jobs, &workloads, args.threads);

    for (scheme, mode, job_idx) in points {
        println!(
            "\n--- {scheme} + {} ---",
            if mode == PinMode::Late { "LP" } else { "EP" }
        );
        println!(
            "{:<16} {:>12} {:>10} {:>14} {:>16}",
            "benchmark", "mean occ", "peak occ", "inserts", "overflow rate"
        );
        for (wi, w) in workloads.iter().enumerate() {
            let res = &results[job_idx][wi];
            let occ = res.stats.histogram("cpt.occupancy");
            let peak = res
                .stats
                .histogram("cpt.peak")
                .and_then(|h| h.max())
                .unwrap_or(0);

            let res2 = &results[job_idx + 1][wi];
            let attempts = res2.stats.get("cpt.insert_attempts");
            let overflows = res2.stats.get("cpt.overflows");
            println!(
                "{:<16} {:>12.3} {:>10} {:>14} {:>16}",
                w.name,
                occ.and_then(|h| h.mean()).unwrap_or(0.0),
                peak,
                attempts,
                if attempts == 0 {
                    "n/a".to_string()
                } else {
                    format!("{:.6}", overflows as f64 / attempts as f64)
                }
            );
        }
    }
    println!(
        "\npaper reference: average occupancy ~1 line, maximum 4-7; \
         < 0.0001 overflows per insertion attempt with 4 entries."
    );
}
