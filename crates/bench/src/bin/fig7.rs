//! Figure 7: normalized CPI of the SPEC17-like suite on every defense
//! scheme under Comp / LP / EP / Spectre, normalized to Unsafe.
//!
//! Run with `cargo run --release -p pl-bench --bin fig7
//! [--scale test|bench|full] [--threads N]`.

use pl_base::{DefenseScheme, MachineConfig};
use pl_bench::{print_banner, print_scheme_table, scheme_matrix_rows, unsafe_cpis};
use pl_workloads::spec_suite;

fn main() {
    let args = pl_bench::parse_args();
    let base = MachineConfig::default_single_core();
    print_banner("Figure 7: SPEC17-like suite, normalized CPI", &base);
    let workloads = spec_suite(args.scale);
    let names: Vec<String> = workloads.iter().map(|w| w.name.clone()).collect();
    let baselines = unsafe_cpis(&base, &workloads, args.threads);
    // One fan-out across the full scheme×workload×extension matrix.
    let schemes = DefenseScheme::PROTECTED;
    let per_scheme = scheme_matrix_rows(&base, &schemes, &workloads, &baselines, args.threads);
    for (scheme, rows) in schemes.iter().zip(&per_scheme) {
        print_scheme_table(*scheme, &names, rows);
    }
    println!(
        "\npaper reference (geo-mean overheads, SPEC17): \
         Fence 112.6/66.4/51.3/34.5%  DOM 35.8/32.3/15.3/9.7%  STT 24.8/19.5/13.2/6.4%"
    );
}
