//! Extension experiment: an InvisiSpec-class invisible-speculation
//! defense with and without Pinned Loads.
//!
//! The paper's Section 4 lists invisible execution as a third class of
//! baseline that Pinned Loads can augment ("pre-VP loads can be issued
//! invisibly, but need to be followed by a second access later on",
//! Section 1) but does not evaluate one. This harness does: pre-VP loads
//! bind their value without touching the cache hierarchy and are
//! validated by an exposed access at their VP, so the overhead is the
//! validation traffic plus retirement stalls — which earlier VPs (LP/EP)
//! directly reduce.
//!
//! Run with `cargo run --release -p pl-bench --bin invisible
//! [--scale ...] [--cores N] [--threads N]`.

use pl_base::{DefenseScheme, MachineConfig};
use pl_bench::{print_banner, print_scheme_table, scheme_cpi_rows, unsafe_cpis};
use pl_workloads::{parallel_suite, spec_suite};

fn main() {
    let args = pl_bench::parse_args();
    let single = MachineConfig::default_single_core();
    print_banner(
        "Extension: invisible speculation (InvisiSpec-class)",
        &single,
    );

    let workloads = spec_suite(args.scale);
    let names: Vec<String> = workloads.iter().map(|w| w.name.clone()).collect();
    let baselines = unsafe_cpis(&single, &workloads, args.threads);
    let rows = scheme_cpi_rows(
        &single,
        &workloads,
        DefenseScheme::Invisible,
        &baselines,
        args.threads,
    );
    println!("\n=== SPEC17-like suite ===");
    print_scheme_table(DefenseScheme::Invisible, &names, &rows);

    let multi = MachineConfig::default_multi_core(args.cores);
    let par = parallel_suite(args.cores, args.scale);
    let par_names: Vec<String> = par.iter().map(|w| w.name.clone()).collect();
    let par_baselines = unsafe_cpis(&multi, &par, args.threads);
    let par_rows = scheme_cpi_rows(
        &multi,
        &par,
        DefenseScheme::Invisible,
        &par_baselines,
        args.threads,
    );
    println!("\n=== Parallel suite ({} cores) ===", args.cores);
    print_scheme_table(DefenseScheme::Invisible, &par_names, &par_rows);

    println!(
        "\nexpected shape: far cheaper than Fence+Comp (values bind early), \
         more expensive than Unsafe (double accesses + retirement stalls); \
         LP/EP shrink the window between invisible bind and exposure."
    );
}
