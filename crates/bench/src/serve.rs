//! Simulation-as-a-service: a long-running job server with a
//! content-addressed result cache and mid-run checkpointing.
//!
//! Sweep experiments re-simulate the same `(workload, configuration,
//! seed)` triples over and over — across figure binaries, across
//! parameter scans that share a baseline, across repeated CI runs. Every
//! simulation is deterministic given its configuration, so a repeat is
//! pure waste. [`serve`] runs a server that keys each request by
//! [`job_digest`] (a stable FNV-1a digest over the workload content, the
//! full [`MachineConfig`], and the optional VP mask — the seed rides
//! inside the config), answers repeats from an on-disk [`ResultCache`]
//! byte-for-byte, and farms cold misses out to a worker pool.
//!
//! Long workloads checkpoint every `checkpoint_period` cycles via
//! [`pl_machine::Machine::snapshot`]; a worker that dies mid-run (which
//! the `kill_after_checkpoints` fault-injection knob simulates) loses at
//! most one period, because the job is re-enqueued and resumed from the
//! last [`Checkpoint`] — by whichever worker picks it up — with results
//! bit-identical to an uninterrupted run.
//!
//! Checkpoints also spill to disk beside the result cache (a
//! [`CheckpointStore`]: one `plckpt-<digest>.bin` per in-flight job,
//! written atomically with the same temp-file + rename discipline as
//! [`ResultCache`], payload produced by
//! [`pl_machine::Machine::encode_state`]). A *server* restart therefore
//! loses at most one period too: a fresh server finding a spilled
//! checkpoint for a requested job rebuilds the machine from the job
//! description and overlays the saved state instead of starting over.
//! Spill files are removed when their job completes; a corrupt or
//! mismatched file is ignored (the job just restarts from cycle zero).
//!
//! The wire protocol is newline-delimited JSON over TCP, parsed with the
//! in-tree [`pl_trace::json`] parser — no new dependencies. All `u64`
//! values are encoded as decimal *strings* because the parser holds
//! numbers as `f64`, which cannot round-trip values above 2^53 (seeds
//! and memory contents use the full 64 bits).
//!
//! Traced runs ([`pl_base::TraceConfig::enabled`]) are served but never
//! cached: their value is the multi-megabyte event log, which the result
//! wire format deliberately omits, so caching the stats-only residue
//! would poison repeats that actually wanted a trace — and would bloat
//! the cache directory with buffers that defeat its purpose.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Condvar, Mutex};

use pl_base::digest::Fnv1a;
use pl_base::{
    Addr, DefenseScheme, Histogram, MachineConfig, Mutation, PinMode, Stats, ThreatModel,
};
use pl_isa::asm::{disassemble, parse_asm};
use pl_isa::Reg;
use pl_machine::{Checkpoint, Machine, RunResult, StepOutcome};
use pl_secure::VpMask;
use pl_trace::json::{escape, parse, Value};
use pl_workloads::Workload;

/// Version tag mixed into every [`job_digest`]; bump when the job wire
/// schema changes meaning so stale cache entries go cold instead of
/// aliasing.
pub const JOB_DIGEST_SCHEMA: u64 = 2;

/// Default cycles between checkpoints for jobs that don't override it.
pub const DEFAULT_CHECKPOINT_PERIOD: u64 = 250_000;

// ---------------------------------------------------------------------
// JSON helpers: u64-as-string encoding over the f64-backed parser.
// ---------------------------------------------------------------------

fn ju64(v: u64) -> String {
    format!("\"{v}\"")
}

fn get<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn get_u64(v: &Value, key: &str) -> Result<u64, String> {
    let field = get(v, key)?;
    if let Some(s) = field.as_str() {
        return s
            .parse()
            .map_err(|_| format!("field `{key}`: bad u64 `{s}`"));
    }
    match field.as_f64() {
        Some(n) if n >= 0.0 && n.fract() == 0.0 => Ok(n as u64),
        _ => Err(format!("field `{key}` is not a u64")),
    }
}

fn get_usize(v: &Value, key: &str) -> Result<usize, String> {
    Ok(get_u64(v, key)? as usize)
}

fn get_u8(v: &Value, key: &str) -> Result<u8, String> {
    let n = get_u64(v, key)?;
    u8::try_from(n).map_err(|_| format!("field `{key}`: {n} does not fit u8"))
}

fn get_bool(v: &Value, key: &str) -> Result<bool, String> {
    get(v, key)?
        .as_bool()
        .ok_or_else(|| format!("field `{key}` is not a bool"))
}

fn get_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    get(v, key)?
        .as_str()
        .ok_or_else(|| format!("field `{key}` is not a string"))
}

fn arr_u64(v: &Value) -> Result<u64, String> {
    if let Some(s) = v.as_str() {
        return s.parse().map_err(|_| format!("bad u64 `{s}`"));
    }
    match v.as_f64() {
        Some(n) if n >= 0.0 && n.fract() == 0.0 => Ok(n as u64),
        _ => Err("array element is not a u64".to_string()),
    }
}

// ---------------------------------------------------------------------
// MachineConfig wire format.
// ---------------------------------------------------------------------

/// Serializes the full configuration. Every field is explicit; the
/// strict deserializer rejects configs with missing fields so a client
/// and server that disagree about the schema fail loudly instead of
/// silently simulating different machines under the same digest.
pub fn config_to_json(cfg: &MachineConfig) -> String {
    let cache = |c: &pl_base::CacheConfig| {
        format!(
            "{{\"hit_latency\":{},\"mshr_entries\":{},\"size_bytes\":{},\"ways\":{}}}",
            ju64(c.hit_latency),
            c.mshr_entries,
            ju64(c.size_bytes),
            c.ways
        )
    };
    format!(
        "{{\"core\":{{\"alu_latency\":{},\"btb_entries\":{},\"commit_width\":{},\
         \"conservative_tso\":{},\"fetch_width\":{},\"issue_width\":{},\"lq_entries\":{},\
         \"mispredict_penalty\":{},\"mul_latency\":{},\"ras_entries\":{},\"rob_entries\":{},\
         \"sq_entries\":{},\"write_buffer_entries\":{}}},\
         \"defense\":{},\"fast_forward\":{},\
         \"mem\":{{\"dram_latency\":{},\"hop_latency\":{},\"l1d\":{},\"llc_slice\":{},\
         \"llc_slices\":{},\"mesh_cols\":{},\"mesh_rows\":{},\"prefetch_degree\":{}}},\
         \"num_cores\":{},\
         \"pinned_loads\":{{\"cpt_entries\":{},\"cst\":{{\"dir_entries\":{},\"dir_records\":{},\
         \"l1_entries\":{},\"l1_records\":{},\"wd\":{}}},\"ideal_cpt\":{},\"ideal_cst\":{},\
         \"lq_id_tag_bits\":{},\"mode\":{}}},\
         \"seed\":{},\"spin_parking\":{},\"threat_model\":{},\
         \"trace\":{{\"buffer_capacity\":{},\"enabled\":{}}},\
         \"verify\":{{\"enabled\":{},\"fault_delay\":{},\"fault_seed\":{},\"mutation\":{},\
         \"snapshot_period\":{}}}}}",
        ju64(cfg.core.alu_latency),
        cfg.core.btb_entries,
        cfg.core.commit_width,
        cfg.core.conservative_tso,
        cfg.core.fetch_width,
        cfg.core.issue_width,
        cfg.core.lq_entries,
        ju64(cfg.core.mispredict_penalty),
        ju64(cfg.core.mul_latency),
        cfg.core.ras_entries,
        cfg.core.rob_entries,
        cfg.core.sq_entries,
        cfg.core.write_buffer_entries,
        cfg.defense.code(),
        cfg.fast_forward,
        ju64(cfg.mem.dram_latency),
        ju64(cfg.mem.hop_latency),
        cache(&cfg.mem.l1d),
        cache(&cfg.mem.llc_slice),
        cfg.mem.llc_slices,
        cfg.mem.mesh_cols,
        cfg.mem.mesh_rows,
        cfg.mem.prefetch_degree,
        cfg.num_cores,
        cfg.pinned_loads.cpt.entries,
        cfg.pinned_loads.cst.dir_entries,
        cfg.pinned_loads.cst.dir_records,
        cfg.pinned_loads.cst.l1_entries,
        cfg.pinned_loads.cst.l1_records,
        cfg.pinned_loads.cst.wd,
        cfg.pinned_loads.ideal_cpt,
        cfg.pinned_loads.ideal_cst,
        cfg.pinned_loads.lq_id_tag_bits,
        cfg.pinned_loads.mode.code(),
        ju64(cfg.seed),
        cfg.spin_parking,
        cfg.threat_model.code(),
        cfg.trace.buffer_capacity,
        cfg.trace.enabled,
        cfg.verify.enabled,
        ju64(cfg.verify.fault_delay),
        ju64(cfg.verify.fault_seed),
        cfg.verify.mutation.code(),
        ju64(cfg.verify.snapshot_period),
    )
}

fn cache_from_json(v: &Value) -> Result<pl_base::CacheConfig, String> {
    Ok(pl_base::CacheConfig {
        size_bytes: get_u64(v, "size_bytes")?,
        ways: get_usize(v, "ways")?,
        hit_latency: get_u64(v, "hit_latency")?,
        mshr_entries: get_usize(v, "mshr_entries")?,
    })
}

/// Strict inverse of [`config_to_json`].
///
/// # Errors
///
/// Names the first missing or ill-typed field.
pub fn config_from_json(v: &Value) -> Result<MachineConfig, String> {
    let core = get(v, "core")?;
    let mem = get(v, "mem")?;
    let pl = get(v, "pinned_loads")?;
    let cst = get(pl, "cst")?;
    let trace = get(v, "trace")?;
    let verify = get(v, "verify")?;
    Ok(MachineConfig {
        num_cores: get_usize(v, "num_cores")?,
        core: pl_base::CoreConfig {
            issue_width: get_usize(core, "issue_width")?,
            fetch_width: get_usize(core, "fetch_width")?,
            commit_width: get_usize(core, "commit_width")?,
            rob_entries: get_usize(core, "rob_entries")?,
            lq_entries: get_usize(core, "lq_entries")?,
            sq_entries: get_usize(core, "sq_entries")?,
            write_buffer_entries: get_usize(core, "write_buffer_entries")?,
            btb_entries: get_usize(core, "btb_entries")?,
            ras_entries: get_usize(core, "ras_entries")?,
            mispredict_penalty: get_u64(core, "mispredict_penalty")?,
            alu_latency: get_u64(core, "alu_latency")?,
            mul_latency: get_u64(core, "mul_latency")?,
            conservative_tso: get_bool(core, "conservative_tso")?,
        },
        mem: pl_base::MemConfig {
            l1d: cache_from_json(get(mem, "l1d")?)?,
            llc_slice: cache_from_json(get(mem, "llc_slice")?)?,
            llc_slices: get_usize(mem, "llc_slices")?,
            hop_latency: get_u64(mem, "hop_latency")?,
            mesh_cols: get_usize(mem, "mesh_cols")?,
            mesh_rows: get_usize(mem, "mesh_rows")?,
            dram_latency: get_u64(mem, "dram_latency")?,
            prefetch_degree: get_usize(mem, "prefetch_degree")?,
        },
        defense: DefenseScheme::from_code(get_u8(v, "defense")?).ok_or("unknown defense code")?,
        threat_model: ThreatModel::from_code(get_u8(v, "threat_model")?)
            .ok_or("unknown threat_model code")?,
        pinned_loads: pl_base::PinnedLoadsConfig {
            mode: PinMode::from_code(get_u8(pl, "mode")?).ok_or("unknown pin mode code")?,
            cst: pl_base::CstConfig {
                l1_entries: get_usize(cst, "l1_entries")?,
                l1_records: get_usize(cst, "l1_records")?,
                dir_entries: get_usize(cst, "dir_entries")?,
                dir_records: get_usize(cst, "dir_records")?,
                wd: get_usize(cst, "wd")?,
            },
            cpt: pl_base::CptConfig {
                entries: get_usize(pl, "cpt_entries")?,
            },
            lq_id_tag_bits: get_u64(pl, "lq_id_tag_bits")? as u32,
            ideal_cst: get_bool(pl, "ideal_cst")?,
            ideal_cpt: get_bool(pl, "ideal_cpt")?,
        },
        trace: pl_base::TraceConfig {
            enabled: get_bool(trace, "enabled")?,
            buffer_capacity: get_usize(trace, "buffer_capacity")?,
        },
        fast_forward: get_bool(v, "fast_forward")?,
        spin_parking: get_bool(v, "spin_parking")?,
        seed: get_u64(v, "seed")?,
        verify: pl_base::VerifyConfig {
            enabled: get_bool(verify, "enabled")?,
            fault_delay: get_u64(verify, "fault_delay")?,
            fault_seed: get_u64(verify, "fault_seed")?,
            mutation: Mutation::from_code(get_u8(verify, "mutation")?)
                .ok_or("unknown mutation code")?,
            snapshot_period: get_u64(verify, "snapshot_period")?,
        },
    })
}

// ---------------------------------------------------------------------
// Workload and VP-mask wire formats.
// ---------------------------------------------------------------------

/// Serializes a workload: programs travel as assembly text (the
/// round-trip-tested [`disassemble`]/[`parse_asm`] pair), memory and
/// register images as `[address, value]` pairs.
pub fn workload_to_json(w: &Workload) -> String {
    let programs: Vec<String> = w
        .programs
        .iter()
        .map(|p| format!("\"{}\"", escape(&disassemble(p))))
        .collect();
    let mem: Vec<String> = w
        .init_mem
        .iter()
        .map(|&(a, v)| format!("[{},{}]", ju64(a.raw()), ju64(v)))
        .collect();
    let regs: Vec<String> = w
        .init_regs
        .iter()
        .map(|per_core| {
            let pairs: Vec<String> = per_core
                .iter()
                .map(|&(r, v)| format!("[{},{}]", r.index(), ju64(v)))
                .collect();
            format!("[{}]", pairs.join(","))
        })
        .collect();
    format!(
        "{{\"init_mem\":[{}],\"init_regs\":[{}],\"name\":\"{}\",\"programs\":[{}]}}",
        mem.join(","),
        regs.join(","),
        escape(&w.name),
        programs.join(","),
    )
}

/// Strict inverse of [`workload_to_json`].
///
/// # Errors
///
/// Reports the first malformed field, including assembly parse errors.
pub fn workload_from_json(v: &Value) -> Result<Workload, String> {
    let name = get_str(v, "name")?.to_string();
    let mut programs = Vec::new();
    for (i, p) in get(v, "programs")?
        .as_arr()
        .ok_or("`programs` is not an array")?
        .iter()
        .enumerate()
    {
        let src = p.as_str().ok_or("program is not a string")?;
        programs.push(parse_asm(src).map_err(|e| format!("program {i}: {e}"))?);
    }
    let mut init_mem = Vec::new();
    for pair in get(v, "init_mem")?
        .as_arr()
        .ok_or("`init_mem` is not an array")?
    {
        let pair = pair.as_arr().ok_or("init_mem entry is not a pair")?;
        if pair.len() != 2 {
            return Err("init_mem entry is not a pair".to_string());
        }
        init_mem.push((Addr::new(arr_u64(&pair[0])?), arr_u64(&pair[1])?));
    }
    let mut init_regs = Vec::new();
    for per_core in get(v, "init_regs")?
        .as_arr()
        .ok_or("`init_regs` is not an array")?
    {
        let mut regs = Vec::new();
        for pair in per_core.as_arr().ok_or("init_regs core is not an array")? {
            let pair = pair.as_arr().ok_or("init_regs entry is not a pair")?;
            if pair.len() != 2 {
                return Err("init_regs entry is not a pair".to_string());
            }
            let idx = arr_u64(&pair[0])?;
            let reg = Reg::new(u8::try_from(idx).map_err(|_| "register index too large")?)
                .map_err(|e| e.to_string())?;
            regs.push((reg, arr_u64(&pair[1])?));
        }
        init_regs.push(regs);
    }
    Ok(Workload {
        name,
        programs,
        init_mem,
        init_regs,
    })
}

fn mask_to_json(mask: &VpMask) -> String {
    format!(
        "{{\"alias\":{},\"ctrl\":{},\"exception\":{},\"mcv\":{}}}",
        mask.alias, mask.ctrl, mask.exception, mask.mcv
    )
}

fn mask_from_json(v: &Value) -> Result<VpMask, String> {
    Ok(VpMask {
        ctrl: get_bool(v, "ctrl")?,
        alias: get_bool(v, "alias")?,
        exception: get_bool(v, "exception")?,
        mcv: get_bool(v, "mcv")?,
    })
}

// ---------------------------------------------------------------------
// Job digest and result wire format.
// ---------------------------------------------------------------------

/// The content digest that keys the result cache: a stable FNV-1a hash
/// over the job schema version, the full configuration digest
/// ([`MachineConfig::digest`], which covers the seed), the VP-mask
/// override, and the complete workload content (programs as canonical
/// disassembly, memory and register images).
///
/// # Examples
///
/// ```
/// use pl_base::MachineConfig;
/// use pl_bench::serve::job_digest;
/// use pl_workloads::{spec_suite, Scale};
/// let cfg = MachineConfig::default_single_core();
/// let suite = spec_suite(Scale::Test);
/// let d0 = job_digest(&cfg, None, &suite[0]);
/// assert_eq!(d0, job_digest(&cfg, None, &suite[0]), "deterministic");
/// assert_ne!(d0, job_digest(&cfg, None, &suite[1]), "workload-sensitive");
/// let mut reseeded = cfg.clone();
/// reseeded.seed ^= 1;
/// assert_ne!(d0, job_digest(&reseeded, None, &suite[0]), "seed-sensitive");
/// ```
pub fn job_digest(cfg: &MachineConfig, mask: Option<VpMask>, workload: &Workload) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(JOB_DIGEST_SCHEMA);
    h.write_u64(cfg.digest());
    match mask {
        None => h.write_u8(0),
        Some(m) => {
            h.write_u8(1);
            h.write_bool(m.ctrl);
            h.write_bool(m.alias);
            h.write_bool(m.exception);
            h.write_bool(m.mcv);
        }
    }
    h.write_str(&workload.name);
    h.write_usize(workload.programs.len());
    for p in &workload.programs {
        h.write_str(&disassemble(p));
    }
    h.write_usize(workload.init_mem.len());
    for &(a, v) in &workload.init_mem {
        h.write_u64(a.raw());
        h.write_u64(v);
    }
    h.write_usize(workload.init_regs.len());
    for per_core in &workload.init_regs {
        h.write_usize(per_core.len());
        for &(r, v) in per_core {
            h.write_usize(r.index());
            h.write_u64(v);
        }
    }
    h.finish()
}

/// Canonical result serialization: only `u64` fields (encoded as decimal
/// strings) in deterministic order, so identical runs serialize to
/// identical bytes — the property that lets cache hits splice the stored
/// file verbatim. Traces are deliberately omitted (see module docs).
pub fn result_to_json(res: &RunResult) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(4096);
    let _ = write!(s, "{{\"counters\":{{");
    for (i, (name, value)) in res.stats.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\":{}", escape(name), ju64(value));
    }
    let _ = write!(s, "}},\"cycles\":{},\"histograms\":{{", ju64(res.cycles));
    for (i, (name, h)) in res.stats.iter_histograms().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\"{}\":{{\"count\":{},\"max\":{},\"min\":{},\"sum\":{}}}",
            escape(name),
            ju64(h.count()),
            ju64(h.max().unwrap_or(0)),
            ju64(h.min().unwrap_or(0)),
            ju64(h.sum()),
        );
    }
    let _ = write!(s, "}},\"retired_per_core\":[");
    for (i, r) in res.retired_per_core.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&ju64(*r));
    }
    s.push_str("]}");
    s
}

/// Rebuilds a [`RunResult`] from [`result_to_json`] output. The trace is
/// always `None`: traces never travel over the wire.
///
/// # Errors
///
/// Reports the first malformed field.
pub fn result_from_json(v: &Value) -> Result<RunResult, String> {
    let cycles = get_u64(v, "cycles")?;
    let mut retired_per_core = Vec::new();
    for r in get(v, "retired_per_core")?
        .as_arr()
        .ok_or("`retired_per_core` is not an array")?
    {
        retired_per_core.push(arr_u64(r)?);
    }
    let mut stats = Stats::new();
    let Value::Obj(counters) = get(v, "counters")? else {
        return Err("`counters` is not an object".to_string());
    };
    for (name, value) in counters {
        stats.add(name, arr_u64(value)?);
    }
    let Value::Obj(histograms) = get(v, "histograms")? else {
        return Err("`histograms` is not an object".to_string());
    };
    for (name, h) in histograms {
        let count = get_u64(h, "count")?;
        let hist = Histogram::from_parts(
            count,
            get_u64(h, "sum")?,
            (count > 0).then(|| get_u64(h, "min")).transpose()?,
            (count > 0).then(|| get_u64(h, "max")).transpose()?,
        );
        stats.set_histogram(name, hist);
    }
    Ok(RunResult {
        cycles,
        retired_per_core,
        stats,
        trace: None,
    })
}

// ---------------------------------------------------------------------
// On-disk result cache.
// ---------------------------------------------------------------------

/// A content-addressed result store: one `plcache-<digest>.json` file
/// per completed job, written atomically (temp file + rename) so a
/// killed worker never leaves a torn entry.
///
/// A long-lived server accumulates one file per distinct job forever, so
/// the cache can be bounded ([`ResultCache::with_limits`]): after every
/// store, least-recently-used entries are evicted until the cache fits.
/// Recency is the file mtime — a [`ResultCache::lookup`] hit re-stamps
/// it, so hot entries survive and cold ones age out. The entry just
/// stored is never evicted (a limit smaller than one entry must not turn
/// `store` into a no-op that breaks the store-then-lookup contract).
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    tmp_counter: AtomicU64,
    max_entries: Option<usize>,
    max_bytes: Option<u64>,
    evictions: AtomicU64,
}

impl ResultCache {
    /// Opens (creating if needed) an unbounded cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new(dir: &Path) -> io::Result<ResultCache> {
        ResultCache::with_limits(dir, None, None)
    }

    /// Opens (creating if needed) a cache rooted at `dir` that holds at
    /// most `max_entries` files / `max_bytes` total payload bytes
    /// (`None` = unlimited).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn with_limits(
        dir: &Path,
        max_entries: Option<usize>,
        max_bytes: Option<u64>,
    ) -> io::Result<ResultCache> {
        std::fs::create_dir_all(dir)?;
        Ok(ResultCache {
            dir: dir.to_path_buf(),
            tmp_counter: AtomicU64::new(0),
            max_entries,
            max_bytes,
            evictions: AtomicU64::new(0),
        })
    }

    /// The file an entry with this digest lives at.
    pub fn path_for(&self, digest: u64) -> PathBuf {
        self.dir.join(format!("plcache-{digest:016x}.json"))
    }

    /// The stored result bytes for `digest`, if present. A hit re-stamps
    /// the entry's mtime so LRU eviction sees it as fresh.
    pub fn lookup(&self, digest: u64) -> Option<String> {
        let path = self.path_for(digest);
        let content = std::fs::read_to_string(&path).ok()?;
        if let Ok(f) = std::fs::File::options().write(true).open(&path) {
            let _ = f.set_modified(std::time::SystemTime::now());
        }
        Some(content)
    }

    /// Atomically stores `json` under `digest`, then evicts
    /// least-recently-used entries (never this one) until the cache is
    /// back under its limits.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures on the store itself; eviction
    /// failures are ignored (a stale entry is harmless).
    pub fn store(&self, digest: u64, json: &str) -> io::Result<()> {
        let n = self.tmp_counter.fetch_add(1, Ordering::Relaxed);
        let tmp = self.dir.join(format!(
            "plcache-{digest:016x}.tmp{n}-{}",
            std::process::id()
        ));
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, self.path_for(digest))?;
        if self.max_entries.is_some() || self.max_bytes.is_some() {
            self.enforce_limits(digest);
        }
        Ok(())
    }

    /// Total entries evicted over this cache handle's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    fn enforce_limits(&self, keep: u64) {
        let Ok(rd) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let keep_name = format!("plcache-{keep:016x}.json");
        // (mtime, name, size) per entry; name tie-breaks equal mtimes so
        // eviction order is deterministic on coarse-granularity clocks.
        let mut entries: Vec<(std::time::SystemTime, String, u64)> = rd
            .filter_map(Result::ok)
            .filter_map(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                if !name.starts_with("plcache-") || !name.ends_with(".json") {
                    return None;
                }
                let meta = e.metadata().ok()?;
                let mtime = meta.modified().ok()?;
                Some((mtime, name, meta.len()))
            })
            .collect();
        entries.sort();
        let mut count = entries.len();
        let mut bytes: u64 = entries.iter().map(|e| e.2).sum();
        for (_, name, size) in entries {
            let over = self.max_entries.is_some_and(|m| count > m)
                || self.max_bytes.is_some_and(|m| bytes > m);
            if !over {
                break;
            }
            if name == keep_name {
                continue;
            }
            if std::fs::remove_file(self.dir.join(&name)).is_ok() {
                count -= 1;
                bytes = bytes.saturating_sub(size);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Number of completed entries currently stored.
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| {
                        let name = e.file_name();
                        let name = name.to_string_lossy();
                        name.starts_with("plcache-") && name.ends_with(".json")
                    })
                    .count()
            })
            .unwrap_or(0)
    }

    /// `true` if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------
// On-disk checkpoint spill.
// ---------------------------------------------------------------------

/// Magic + version stamped on every spilled checkpoint file.
const CKPT_MAGIC: u32 = 0x504C_434B; // "PLCK"
const CKPT_VERSION: u32 = 1;

/// The durable sibling of the in-memory checkpoint store: one
/// `plckpt-<digest>.bin` file per in-flight job, living next to the
/// [`ResultCache`] entries and written with the same temp-file + rename
/// discipline, so a server killed mid-write never leaves a torn spill.
///
/// The payload is [`pl_machine::Machine::encode_state`] bytes behind a
/// small canonical header (magic, version, digest, cycle, resume count).
/// The digest in the header must match the file name's — a spill is only
/// meaningful for the exact job that produced it, because the state
/// stream carries no configuration or programs of its own.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    tmp_counter: AtomicU64,
}

impl CheckpointStore {
    /// Opens (creating if needed) a spill store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new(dir: &Path) -> io::Result<CheckpointStore> {
        std::fs::create_dir_all(dir)?;
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
            tmp_counter: AtomicU64::new(0),
        })
    }

    /// The file a spill with this digest lives at.
    pub fn path_for(&self, digest: u64) -> PathBuf {
        self.dir.join(format!("plckpt-{digest:016x}.bin"))
    }

    /// Atomically spills `state` (from
    /// [`pl_machine::Machine::encode_state`]) for job `digest`, taken at
    /// `cycle` after `resumed` prior resumes.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn store(&self, digest: u64, cycle: u64, resumed: u64, state: &[u8]) -> io::Result<()> {
        let mut e = pl_base::Enc::new();
        e.u32(CKPT_MAGIC);
        e.u32(CKPT_VERSION);
        e.u64(digest);
        e.u64(cycle);
        e.u64(resumed);
        let mut bytes = e.into_bytes();
        bytes.extend_from_slice(state);
        let n = self.tmp_counter.fetch_add(1, Ordering::Relaxed);
        let tmp = self.dir.join(format!(
            "plckpt-{digest:016x}.tmp{n}-{}",
            std::process::id()
        ));
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, self.path_for(digest))
    }

    /// Loads the spilled `(cycle, resumed, state)` for `digest`, or
    /// `None` if no spill exists or the file fails validation (wrong
    /// magic, version, or digest — e.g. truncated by a full disk). A bad
    /// spill is deliberately indistinguishable from a missing one: the
    /// job simply restarts from cycle zero.
    pub fn load(&self, digest: u64) -> Option<(u64, u64, Vec<u8>)> {
        let bytes = std::fs::read(self.path_for(digest)).ok()?;
        let mut d = pl_base::Dec::new(&bytes);
        if d.u32().ok()? != CKPT_MAGIC || d.u32().ok()? != CKPT_VERSION || d.u64().ok()? != digest {
            return None;
        }
        let cycle = d.u64().ok()?;
        let resumed = d.u64().ok()?;
        Some((cycle, resumed, bytes[d.pos()..].to_vec()))
    }

    /// Removes the spill for `digest`, if any (the job completed or
    /// errored; either way the file is dead weight).
    pub fn remove(&self, digest: u64) {
        let _ = std::fs::remove_file(self.path_for(digest));
    }

    /// Number of spill files currently on disk.
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| {
                        let name = e.file_name();
                        let name = name.to_string_lossy();
                        name.starts_with("plckpt-") && name.ends_with(".bin")
                    })
                    .count()
            })
            .unwrap_or(0)
    }

    /// `true` if no spill files are on disk.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------
// The server.
// ---------------------------------------------------------------------

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address, e.g. `127.0.0.1:7171` or `127.0.0.1:0` for an
    /// ephemeral port.
    pub addr: String,
    /// Worker threads executing cold-miss simulations.
    pub threads: usize,
    /// Result cache directory.
    pub cache_dir: PathBuf,
    /// Most cached results kept on disk (`None` = unlimited); the
    /// least-recently-used entries are evicted past the limit.
    pub cache_max_entries: Option<usize>,
    /// Most total cached result bytes kept on disk (`None` = unlimited).
    pub cache_max_bytes: Option<u64>,
    /// Default cycles between job checkpoints (jobs may override).
    pub checkpoint_period: u64,
    /// When set, the actual bound port is written here once listening —
    /// how scripts using port 0 discover the address.
    pub port_file: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            threads: crate::sweep::default_threads(),
            cache_dir: PathBuf::from("plcache"),
            cache_max_entries: None,
            cache_max_bytes: None,
            checkpoint_period: DEFAULT_CHECKPOINT_PERIOD,
            port_file: None,
        }
    }
}

struct Job {
    digest: u64,
    cfg: MachineConfig,
    mask: Option<VpMask>,
    workload: Workload,
    checkpoint_period: u64,
    /// Fault injection: abandon the run after taking this many
    /// checkpoints in the current attempt (`None` = run to completion).
    kill_after: Option<u64>,
    reply: mpsc::Sender<Result<JobDone, String>>,
}

struct JobDone {
    result_json: String,
    resumed: u64,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    /// In-memory checkpoint store: digest -> (latest checkpoint, times
    /// this job has been resumed). The fast path for a *worker* death —
    /// the requeued job resumes without touching disk. A *server* death
    /// falls back to the on-disk [`CheckpointStore`] spill.
    checkpoints: Mutex<HashMap<u64, (Checkpoint, u64)>>,
    cache: ResultCache,
    /// Durable checkpoint spill, sharing the cache directory.
    ckpt: CheckpointStore,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Checkpoint spill files written this process (`stats` reports it;
    /// the restart test asserts the write path actually ran).
    spills: AtomicU64,
    local_addr: Mutex<Option<SocketAddr>>,
}

fn cacheable(cfg: &MachineConfig) -> bool {
    !cfg.trace.enabled
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("job queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.queue_cv.wait(queue).expect("job queue wait");
            }
        };
        run_job(shared, job);
    }
}

fn run_job(shared: &Shared, job: Job) {
    // Resume from the latest in-memory checkpoint if one exists (worker
    // death); failing that, from an on-disk spill (server death);
    // otherwise build a fresh machine from the job description.
    let entry = shared
        .checkpoints
        .lock()
        .expect("checkpoint store lock")
        .remove(&job.digest);
    let (mut machine, resumed) = match entry {
        Some((cp, prior_resumes)) => (Machine::restore(&cp), prior_resumes + 1),
        None => {
            if job.workload.cores() > job.cfg.num_cores {
                let _ = job.reply.send(Err(format!(
                    "workload `{}` needs {} cores but the config has {}",
                    job.workload.name,
                    job.workload.cores(),
                    job.cfg.num_cores
                )));
                return;
            }
            // The state stream carries no configuration or programs, so
            // the overlay target must be built exactly as a fresh run
            // would be — config, workload, mask — before decoding.
            let build = || -> Result<Machine, String> {
                let mut m = Machine::new(&job.cfg).map_err(|e| format!("invalid config: {e}"))?;
                job.workload.install(&mut m);
                if let Some(mask) = job.mask {
                    m.set_vp_mask(mask);
                }
                Ok(m)
            };
            let mut m = match build() {
                Ok(m) => m,
                Err(e) => {
                    let _ = job.reply.send(Err(e));
                    return;
                }
            };
            let mut resumed = 0;
            if cacheable(&job.cfg) {
                if let Some((_cycle, prior_resumes, state)) = shared.ckpt.load(job.digest) {
                    if m.decode_state_into(&state).is_ok() {
                        resumed = prior_resumes + 1;
                    } else {
                        // A failed decode leaves the machine partially
                        // overwritten; discard it and restart clean.
                        m = match build() {
                            Ok(m) => m,
                            Err(e) => {
                                let _ = job.reply.send(Err(e));
                                return;
                            }
                        };
                    }
                }
            }
            (m, resumed)
        }
    };
    let mut taken_this_attempt = 0u64;
    let result = loop {
        let pause = machine
            .now()
            .raw()
            .saturating_add(job.checkpoint_period.max(1));
        match machine.run_until(crate::RUN_BUDGET, pause) {
            Ok(StepOutcome::Done(res)) => break res,
            Ok(StepOutcome::Paused) => {
                let cp = machine.snapshot();
                shared
                    .checkpoints
                    .lock()
                    .expect("checkpoint store lock")
                    .insert(job.digest, (cp, resumed));
                if cacheable(&job.cfg) {
                    // Spill the same checkpoint to disk so a *server*
                    // restart resumes too. A failed write is non-fatal:
                    // the in-memory copy still covers worker deaths.
                    let state = machine.encode_state();
                    if shared
                        .ckpt
                        .store(job.digest, machine.now().raw(), resumed, &state)
                        .is_ok()
                    {
                        shared.spills.fetch_add(1, Ordering::Relaxed);
                    }
                }
                taken_this_attempt += 1;
                if job.kill_after.is_some_and(|k| taken_this_attempt >= k) {
                    // Simulate this worker dying mid-run: drop the live
                    // machine and put the job back on the queue. The
                    // checkpoint just stored is all that survives; the
                    // next worker resumes from it.
                    let requeued = Job {
                        kill_after: None,
                        ..job
                    };
                    let mut queue = shared.queue.lock().expect("job queue lock");
                    queue.push_back(requeued);
                    shared.queue_cv.notify_one();
                    return;
                }
            }
            Err(e) => {
                shared
                    .checkpoints
                    .lock()
                    .expect("checkpoint store lock")
                    .remove(&job.digest);
                shared.ckpt.remove(job.digest);
                let _ = job
                    .reply
                    .send(Err(format!("workload `{}`: {e}", job.workload.name)));
                return;
            }
        }
    };
    shared
        .checkpoints
        .lock()
        .expect("checkpoint store lock")
        .remove(&job.digest);
    shared.ckpt.remove(job.digest);
    let json = result_to_json(&result);
    if cacheable(&job.cfg) {
        if let Err(e) = shared.cache.store(job.digest, &json) {
            let _ = job.reply.send(Err(format!("cache store failed: {e}")));
            return;
        }
    }
    let _ = job.reply.send(Ok(JobDone {
        result_json: json,
        resumed,
    }));
}

fn respond(stream: &mut TcpStream, line: &str) {
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
}

fn error_response(msg: &str) -> String {
    format!("{{\"error\":\"{}\",\"ok\":false}}", escape(msg))
}

/// Handles one client connection: read one request line, write one
/// response line. Returns `true` if this request asked for shutdown.
fn handle_connection(shared: &Shared, mut stream: TcpStream) -> bool {
    let mut line = String::new();
    {
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return false,
        });
        if reader.read_line(&mut line).is_err() {
            return false;
        }
    }
    let line = line.trim();
    if line.is_empty() {
        return false;
    }
    let req = match parse(line) {
        Ok(v) => v,
        Err(e) => {
            respond(&mut stream, &error_response(&format!("bad request: {e}")));
            return false;
        }
    };
    match req.get("cmd").and_then(Value::as_str) {
        Some("ping") => {
            respond(&mut stream, "{\"ok\":true}");
            false
        }
        Some("stats") => {
            let hits = shared.hits.load(Ordering::Relaxed);
            let misses = shared.misses.load(Ordering::Relaxed);
            let spills = shared.spills.load(Ordering::Relaxed);
            respond(
                &mut stream,
                &format!(
                    "{{\"cache_entries\":{},\"cache_evictions\":{},\"ckpt_entries\":{},\
                     \"ckpt_spills\":{},\"hits\":{},\"misses\":{},\"ok\":true}}",
                    shared.cache.len(),
                    ju64(shared.cache.evictions()),
                    shared.ckpt.len(),
                    ju64(spills),
                    ju64(hits),
                    ju64(misses),
                ),
            );
            false
        }
        Some("shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue_cv.notify_all();
            respond(&mut stream, "{\"ok\":true,\"stopping\":true}");
            true
        }
        Some("run") => {
            match handle_run(shared, &req) {
                Ok(resp) => respond(&mut stream, &resp),
                Err(e) => respond(&mut stream, &error_response(&e)),
            }
            false
        }
        _ => {
            respond(&mut stream, &error_response("unknown cmd"));
            false
        }
    }
}

fn handle_run(shared: &Shared, req: &Value) -> Result<String, String> {
    let job_v = get(req, "job")?;
    let cfg = config_from_json(get(job_v, "config")?)?;
    cfg.validate().map_err(|e| format!("invalid config: {e}"))?;
    let workload = workload_from_json(get(job_v, "workload")?)?;
    let mask = match job_v.get("mask") {
        None | Some(Value::Null) => None,
        Some(m) => Some(mask_from_json(m)?),
    };
    let digest = job_digest(&cfg, mask, &workload);
    if cacheable(&cfg) {
        if let Some(raw) = shared.cache.lookup(digest) {
            shared.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(format!(
                "{{\"cached\":true,\"digest\":\"{digest:016x}\",\"ok\":true,\
                 \"resumed\":\"0\",\"result\":{raw}}}"
            ));
        }
    }
    shared.misses.fetch_add(1, Ordering::Relaxed);
    let kill_after = match job_v.get("kill_after_checkpoints") {
        None | Some(Value::Null) => None,
        Some(_) => Some(get_u64(job_v, "kill_after_checkpoints")?),
    };
    let checkpoint_period = match job_v.get("checkpoint_period") {
        None | Some(Value::Null) => None,
        Some(_) => Some(get_u64(job_v, "checkpoint_period")?),
    };
    let (tx, rx) = mpsc::channel();
    {
        let mut queue = shared.queue.lock().expect("job queue lock");
        queue.push_back(Job {
            digest,
            cfg,
            mask,
            workload,
            checkpoint_period: checkpoint_period.unwrap_or(DEFAULT_CHECKPOINT_PERIOD),
            kill_after,
            reply: tx,
        });
        shared.queue_cv.notify_one();
    }
    let done = rx
        .recv()
        .map_err(|_| "worker dropped the job (server shutting down?)".to_string())??;
    Ok(format!(
        "{{\"cached\":false,\"digest\":\"{digest:016x}\",\"ok\":true,\
         \"resumed\":\"{}\",\"result\":{}}}",
        done.resumed, done.result_json
    ))
}

/// Runs the job server until a `shutdown` request arrives. Blocks the
/// calling thread; spawns `opts.threads` simulation workers plus one
/// thread per connection.
///
/// # Errors
///
/// Propagates socket and port-file I/O errors.
pub fn serve(opts: &ServeOptions) -> io::Result<()> {
    let listener = TcpListener::bind(&opts.addr)?;
    let local = listener.local_addr()?;
    if let Some(pf) = &opts.port_file {
        let tmp = pf.with_extension("tmp");
        std::fs::write(&tmp, format!("{local}\n"))?;
        std::fs::rename(&tmp, pf)?;
    }
    let shared = Shared {
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        checkpoints: Mutex::new(HashMap::new()),
        cache: ResultCache::with_limits(
            &opts.cache_dir,
            opts.cache_max_entries,
            opts.cache_max_bytes,
        )?,
        ckpt: CheckpointStore::new(&opts.cache_dir)?,
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
        spills: AtomicU64::new(0),
        local_addr: Mutex::new(Some(local)),
    };
    let threads = opts.threads.max(1);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| worker_loop(&shared));
        }
        for stream in listener.incoming() {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let shared_ref = &shared;
            scope.spawn(move || {
                if handle_connection(shared_ref, stream) {
                    // Shutdown was requested on this connection; the
                    // accept loop is still blocked, so poke it awake
                    // with a throwaway connection to ourselves.
                    let addr = shared_ref
                        .local_addr
                        .lock()
                        .expect("local addr lock")
                        .take();
                    if let Some(addr) = addr {
                        let _ = TcpStream::connect(addr);
                    }
                }
            });
        }
        // Wake any workers still parked on the queue condvar.
        shared.queue_cv.notify_all();
    });
    Ok(())
}

// ---------------------------------------------------------------------
// Client side.
// ---------------------------------------------------------------------

/// Sends one request line to a server and returns its one response line.
///
/// # Errors
///
/// Propagates socket I/O errors.
pub fn request(addr: &str, line: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut resp = String::new();
    reader.read_line(&mut resp)?;
    Ok(resp.trim_end().to_string())
}

/// Builds a `run` request line for a job.
pub fn run_request_json(
    cfg: &MachineConfig,
    mask: Option<VpMask>,
    workload: &Workload,
    kill_after_checkpoints: Option<u64>,
    checkpoint_period: Option<u64>,
) -> String {
    let mut extras = String::new();
    if let Some(k) = kill_after_checkpoints {
        extras.push_str(&format!(",\"kill_after_checkpoints\":{}", ju64(k)));
    }
    if let Some(p) = checkpoint_period {
        extras.push_str(&format!(",\"checkpoint_period\":{}", ju64(p)));
    }
    let mask_json = match mask {
        None => "null".to_string(),
        Some(m) => mask_to_json(&m),
    };
    format!(
        "{{\"cmd\":\"run\",\"job\":{{\"config\":{},\"mask\":{}{},\"workload\":{}}}}}",
        config_to_json(cfg),
        mask_json,
        extras,
        workload_to_json(workload),
    )
}

/// Extracts the raw `result` payload from a server response without
/// re-serializing it — the response format puts `"result":` last exactly
/// so this is a substring operation, preserving byte identity between a
/// cache hit and the run that populated the cache.
///
/// # Errors
///
/// Returns the server's error message for `ok:false` responses, or a
/// description of a malformed response.
pub fn extract_result(response: &str) -> Result<&str, String> {
    let v = parse(response).map_err(|e| format!("bad response: {e}"))?;
    if !v.get("ok").and_then(Value::as_bool).unwrap_or(false) {
        let msg = v
            .get("error")
            .and_then(Value::as_str)
            .unwrap_or("unknown server error");
        return Err(format!("server error: {msg}"));
    }
    let marker = "\"result\":";
    let start = response
        .find(marker)
        .ok_or("response has no `result` field")?
        + marker.len();
    let end = response.rfind('}').ok_or("unterminated response")?;
    Ok(&response[start..end])
}

/// `true` if the server's response was answered from its result cache.
pub fn response_was_cached(response: &str) -> bool {
    parse(response)
        .ok()
        .and_then(|v| v.get("cached").and_then(Value::as_bool))
        .unwrap_or(false)
}

/// Runs a job on a remote server and rebuilds the [`RunResult`]. Used by
/// [`crate::run_masked`] when `PL_SWEEP_SERVER` is set; note the rebuilt
/// result never carries a trace.
///
/// # Errors
///
/// Reports connection failures, server-side errors, and malformed
/// responses.
pub fn remote_run(
    addr: &str,
    cfg: &MachineConfig,
    mask: Option<VpMask>,
    workload: &Workload,
) -> Result<RunResult, String> {
    let line = run_request_json(cfg, mask, workload, None, None);
    let resp = request(addr, &line).map_err(|e| format!("connect {addr}: {e}"))?;
    let raw = extract_result(&resp)?;
    let v = parse(raw).map_err(|e| format!("bad result payload: {e}"))?;
    result_from_json(&v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_workloads::{spec_suite, Scale};

    fn test_workload() -> Workload {
        spec_suite(Scale::Test).remove(4) // alu_dense: small and fast
    }

    #[test]
    fn config_json_round_trips() {
        let mut cfg = MachineConfig::default_multi_core(4);
        cfg.defense = DefenseScheme::Stt;
        cfg.pinned_loads = pl_base::PinnedLoadsConfig::with_mode(PinMode::Early);
        cfg.seed = u64::MAX - 7; // exercises the >2^53 string path
        cfg.core.conservative_tso = true;
        let v = parse(&config_to_json(&cfg)).unwrap();
        let back = config_from_json(&v).unwrap();
        assert_eq!(cfg, back);
        assert_eq!(cfg.digest(), back.digest());
    }

    #[test]
    fn workload_json_round_trips() {
        let w = test_workload();
        let v = parse(&workload_to_json(&w)).unwrap();
        let back = workload_from_json(&v).unwrap();
        assert_eq!(w.name, back.name);
        assert_eq!(w.init_mem, back.init_mem);
        assert_eq!(w.init_regs, back.init_regs);
        assert_eq!(w.programs.len(), back.programs.len());
        for (a, b) in w.programs.iter().zip(&back.programs) {
            assert_eq!(disassemble(a), disassemble(b));
        }
        let cfg = MachineConfig::default_single_core();
        assert_eq!(
            job_digest(&cfg, None, &w),
            job_digest(&cfg, None, &back),
            "round-tripped workload must keep its cache key"
        );
    }

    #[test]
    fn result_json_round_trips_and_is_canonical() {
        let cfg = MachineConfig::default_single_core();
        let res = crate::run_workload(&cfg, &test_workload());
        let json = result_to_json(&res);
        let back = result_from_json(&parse(&json).unwrap()).unwrap();
        assert_eq!(res.cycles, back.cycles);
        assert_eq!(res.retired_per_core, back.retired_per_core);
        assert_eq!(res.stats.to_string(), back.stats.to_string());
        // Canonical: serializing the rebuilt result reproduces the bytes.
        assert_eq!(json, result_to_json(&back));
    }

    #[test]
    fn mask_round_trips_and_keys_digest() {
        let m = VpMask {
            ctrl: true,
            alias: false,
            exception: true,
            mcv: false,
        };
        let v = parse(&mask_to_json(&m)).unwrap();
        assert_eq!(m, mask_from_json(&v).unwrap());
        let cfg = MachineConfig::default_single_core();
        let w = test_workload();
        assert_ne!(job_digest(&cfg, None, &w), job_digest(&cfg, Some(m), &w));
    }

    #[test]
    fn cache_store_lookup_round_trip() {
        let dir = std::env::temp_dir().join(format!("plserve-test-{}", std::process::id()));
        let cache = ResultCache::new(&dir).unwrap();
        assert!(cache.lookup(42).is_none());
        cache.store(42, "{\"x\":1}").unwrap();
        assert_eq!(cache.lookup(42).unwrap(), "{\"x\":1}");
        assert_eq!(cache.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bounded_cache_evicts_lru_entries() {
        let dir = std::env::temp_dir().join(format!("plserve-lru-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::with_limits(&dir, Some(3), None).unwrap();
        // Stamp explicit mtimes so recency order is deterministic even on
        // coarse-granularity filesystem clocks.
        let stamp = |digest: u64, secs: u64| {
            let f = std::fs::File::options()
                .write(true)
                .open(cache.path_for(digest))
                .unwrap();
            f.set_modified(std::time::UNIX_EPOCH + std::time::Duration::from_secs(secs))
                .unwrap();
        };
        for d in 1..=3u64 {
            cache.store(d, "{}").unwrap();
            stamp(d, d);
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 0);

        // A lookup hit refreshes entry 1's recency, so entry 2 is the LRU
        // victim when a fourth entry arrives.
        cache.lookup(1).unwrap();
        cache.store(4, "{}").unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.lookup(2).is_none(), "LRU entry survived eviction");
        assert!(cache.lookup(1).is_some());
        assert!(cache.lookup(3).is_some());
        assert!(cache.lookup(4).is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bounded_cache_enforces_byte_budget_but_keeps_newest() {
        let dir = std::env::temp_dir().join(format!("plserve-bytes-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::with_limits(&dir, None, Some(10)).unwrap();
        cache.store(1, "aaaaaa").unwrap(); // 6 bytes: fits
        cache.store(2, "bbbbbbbb").unwrap(); // 14 total: evicts 1
        assert!(cache.lookup(1).is_none());
        assert_eq!(cache.lookup(2).unwrap(), "bbbbbbbb");
        assert_eq!(cache.evictions(), 1);

        // An entry larger than the whole budget still lands — the entry
        // just stored is never its own eviction victim.
        let big = "c".repeat(32);
        cache.store(3, &big).unwrap();
        assert!(cache.lookup(2).is_none());
        assert_eq!(cache.lookup(3).unwrap(), big);
        assert_eq!(cache.evictions(), 2);
        assert_eq!(cache.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn extract_result_splices_raw_bytes() {
        let resp = "{\"cached\":true,\"digest\":\"00ff\",\"ok\":true,\"resumed\":\"0\",\
                    \"result\":{\"cycles\":\"7\"}}";
        assert_eq!(extract_result(resp).unwrap(), "{\"cycles\":\"7\"}");
        assert!(response_was_cached(resp));
        let err = "{\"error\":\"boom\",\"ok\":false}";
        assert!(extract_result(err).unwrap_err().contains("boom"));
    }

    #[test]
    fn traced_configs_are_not_cacheable() {
        let mut cfg = MachineConfig::default_single_core();
        assert!(cacheable(&cfg));
        cfg.trace = pl_base::TraceConfig::enabled();
        assert!(!cacheable(&cfg));
    }

    #[test]
    fn checkpoint_spill_round_trips_and_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("plserve-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir).unwrap();
        assert!(store.load(7).is_none());

        let state = vec![0xA5u8; 300];
        store.store(7, 123_456, 2, &state).unwrap();
        assert_eq!(store.len(), 1);
        let (cycle, resumed, back) = store.load(7).unwrap();
        assert_eq!((cycle, resumed), (123_456, 2));
        assert_eq!(back, state);

        // Wrong digest in the header (file renamed/aliased): rejected.
        std::fs::rename(store.path_for(7), store.path_for(8)).unwrap();
        assert!(store.load(8).is_none());
        std::fs::rename(store.path_for(8), store.path_for(7)).unwrap();

        // A newer store overwrites atomically.
        store.store(7, 200_000, 3, &state).unwrap();
        assert_eq!(store.load(7).unwrap().0, 200_000);
        assert_eq!(store.len(), 1);

        // Truncated and garbage files read as missing, not as errors.
        std::fs::write(store.path_for(9), b"PL").unwrap();
        assert!(store.load(9).is_none());
        std::fs::write(store.path_for(10), vec![0u8; 64]).unwrap();
        assert!(store.load(10).is_none());

        store.remove(7);
        assert!(store.load(7).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spilled_machine_state_resumes_bit_identically() {
        // The spill payload really is a resumable machine: encode at a
        // mid-run pause, overlay onto a freshly built twin, and the twin
        // must finish with the original's exact result.
        let cfg = MachineConfig::default_single_core();
        let w = test_workload();
        let mut reference = Machine::new(&cfg).unwrap();
        w.install(&mut reference);
        let expect = reference.run(crate::RUN_BUDGET).unwrap();

        let dir = std::env::temp_dir().join(format!("plserve-spill-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir).unwrap();
        let digest = job_digest(&cfg, None, &w);
        let mut first = Machine::new(&cfg).unwrap();
        w.install(&mut first);
        let pause = (expect.cycles / 2).max(1);
        match first.run_until(crate::RUN_BUDGET, pause).unwrap() {
            StepOutcome::Paused => {}
            StepOutcome::Done(_) => panic!("job finished before the mid-run pause"),
        }
        let state = first.encode_state();
        store.store(digest, first.now().raw(), 0, &state).unwrap();
        drop(first); // the "server death": only the spill survives

        let (_cycle, _resumed, state) = store.load(digest).unwrap();
        let mut twin = Machine::new(&cfg).unwrap();
        w.install(&mut twin);
        twin.decode_state_into(&state).unwrap();
        let got = twin.run(crate::RUN_BUDGET).unwrap();
        assert_eq!(result_to_json(&got), result_to_json(&expect));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
