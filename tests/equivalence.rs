//! Architectural equivalence across defenses: security hardware must
//! change timing only, never results.
//!
//! Includes a property-based fuzzer (on the in-tree `pl-test` harness)
//! that generates random loop-free programs (arithmetic, forward
//! branches, loads, stores) and checks that every defense/pinning
//! configuration computes the identical final register file and memory
//! image as the unsafe baseline.

use pinned_loads::base::{
    Addr, CoreId, DefenseScheme, MachineConfig, PinMode, PinnedLoadsConfig, ThreatModel,
};
use pinned_loads::isa::{AluOp, BranchCond, Program, ProgramBuilder, Reg};
use pinned_loads::machine::Machine;
use pinned_loads::workloads::{spec_suite, Scale};
use pl_test::{any_i8, any_u8, check_with, one_of, prop_assert_eq, Config, Strategy, StrategyExt};

fn r(i: u8) -> Reg {
    Reg::new(i).unwrap()
}

fn configs() -> Vec<MachineConfig> {
    let mut out = Vec::new();
    for scheme in DefenseScheme::ALL {
        for pin in [PinMode::Off, PinMode::Late, PinMode::Early] {
            if scheme == DefenseScheme::Unsafe && pin != PinMode::Off {
                continue;
            }
            let mut cfg = MachineConfig::default_single_core();
            cfg.defense = scheme;
            cfg.pinned_loads = PinnedLoadsConfig::with_mode(pin);
            // Skips Invisible+pinning, rejected as unsound by validate().
            if cfg.validate().is_ok() {
                out.push(cfg);
            }
        }
    }
    // Spectre threat model variants too.
    for scheme in DefenseScheme::PROTECTED {
        let mut cfg = MachineConfig::default_single_core();
        cfg.defense = scheme;
        cfg.threat_model = ThreatModel::Spectre;
        out.push(cfg);
    }
    out
}

/// Runs `program` and returns (registers 1..8, probed memory words).
fn observe(cfg: &MachineConfig, program: &Program) -> (Vec<u64>, Vec<u64>) {
    let mut m = Machine::new(cfg).unwrap();
    m.load_program(CoreId(0), program.clone());
    // Seed a small data region the fuzzer's loads/stores land in.
    for i in 0..64u64 {
        m.write_mem(Addr::new(0x1_0000 + i * 8), i.wrapping_mul(0x9e37) ^ 0x55);
    }
    m.run(100_000_000)
        .unwrap_or_else(|e| panic!("{}: {e}", cfg.label()));
    let regs = (1..8).map(|i| m.reg(CoreId(0), r(i))).collect();
    let mem = (0..64)
        .map(|i| m.read_mem(Addr::new(0x1_0000 + i * 8)))
        .collect();
    (regs, mem)
}

#[test]
fn spec_kernels_are_architecturally_equivalent_across_all_configs() {
    // Two representative kernels (one miss-heavy, one store-heavy).
    for w in spec_suite(Scale::Test)
        .into_iter()
        .filter(|w| ["gather", "write_burst"].contains(&w.name.as_str()))
    {
        let mut reference: Option<u64> = None;
        for cfg in configs() {
            let mut m = Machine::new(&cfg).unwrap();
            w.install(&mut m);
            let res = m
                .run(500_000_000)
                .unwrap_or_else(|e| panic!("kernel `{}` under {}: {e}", w.name, cfg.label()));
            let fingerprint = res.total_retired() ^ m.reg(CoreId(0), r(20));
            match reference {
                None => reference = Some(fingerprint),
                Some(v) => assert_eq!(
                    v,
                    fingerprint,
                    "kernel `{}` diverged under {}",
                    w.name,
                    cfg.label()
                ),
            }
        }
    }
}

/// One random instruction for the fuzzer. Branch targets are always
/// forward (to `skip_to`), so programs are loop-free and must halt.
#[derive(Debug, Clone)]
enum FuzzOp {
    Alu(u8, u8, u8, u8), // op selector, dst, src1, src2
    AluImm(u8, u8, u8, i8),
    Load(u8, u8, u8),   // dst, base-selector, offset-slot
    Store(u8, u8, u8),  // src, base-selector, offset-slot
    SkipIf(u8, u8, u8), // cond selector, reg a, reg b — skips next 2 ops
}

fn alu_op(sel: u8) -> AluOp {
    match sel % 7 {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::Mul,
        3 => AluOp::And,
        4 => AluOp::Or,
        5 => AluOp::Xor,
        _ => AluOp::SltU,
    }
}

fn cond(sel: u8) -> BranchCond {
    match sel % 4 {
        0 => BranchCond::Eq,
        1 => BranchCond::Ne,
        2 => BranchCond::LtU,
        _ => BranchCond::GeU,
    }
}

/// Registers 1..=7 are fuzzed; 8 holds the data-region base.
fn reg_of(sel: u8) -> Reg {
    r(1 + sel % 7)
}

fn build_program(ops: &[FuzzOp]) -> Program {
    let mut b = ProgramBuilder::new();
    // r8 = data base; loads/stores index off it, masked in-range.
    b.addi(r(8), Reg::ZERO, 0x1_0000);
    let mut pending_skip: Option<(pinned_loads::isa::Label, usize)> = None;
    for op in ops {
        // Close an open skip once two ops were emitted under it.
        if let Some((label, emitted_at)) = pending_skip {
            if b.len() >= emitted_at + 3 {
                b.bind(label).unwrap();
                pending_skip = None;
            }
        }
        match *op {
            FuzzOp::Alu(sel, d, s1, s2) => {
                b.alu(alu_op(sel), reg_of(d), reg_of(s1), reg_of(s2));
            }
            FuzzOp::AluImm(sel, d, s1, imm) => {
                b.alu(alu_op(sel), reg_of(d), reg_of(s1), imm as i64);
            }
            FuzzOp::Load(d, idx, slot) => {
                // address = base + ((reg & 7) * 8 | slot-derived offset),
                // always inside the seeded 64-word region.
                b.alu(AluOp::And, r(9), reg_of(idx), 7i64);
                b.alu(AluOp::Shl, r(9), r(9), 3i64);
                b.alu(AluOp::Add, r(9), r(9), r(8));
                b.load(reg_of(d), r(9), (slot % 8) as i64 * 64);
            }
            FuzzOp::Store(s, idx, slot) => {
                b.alu(AluOp::And, r(9), reg_of(idx), 7i64);
                b.alu(AluOp::Shl, r(9), r(9), 3i64);
                b.alu(AluOp::Add, r(9), r(9), r(8));
                b.store(reg_of(s), r(9), (slot % 8) as i64 * 64);
            }
            FuzzOp::SkipIf(c, a, bb) => {
                if pending_skip.is_none() {
                    let label = b.new_label();
                    b.branch(cond(c), reg_of(a), reg_of(bb), label);
                    pending_skip = Some((label, b.len()));
                }
            }
        }
    }
    if let Some((label, _)) = pending_skip {
        b.bind(label).unwrap();
    }
    b.build().unwrap()
}

fn fuzz_op_strategy() -> impl Strategy<Value = FuzzOp> {
    one_of(vec![
        (any_u8(), any_u8(), any_u8(), any_u8())
            .map(|(a, b, c, d)| FuzzOp::Alu(a, b, c, d))
            .boxed(),
        (any_u8(), any_u8(), any_u8(), any_i8())
            .map(|(a, b, c, d)| FuzzOp::AluImm(a, b, c, d))
            .boxed(),
        (any_u8(), any_u8(), any_u8())
            .map(|(a, b, c)| FuzzOp::Load(a, b, c))
            .boxed(),
        (any_u8(), any_u8(), any_u8())
            .map(|(a, b, c)| FuzzOp::Store(a, b, c))
            .boxed(),
        (any_u8(), any_u8(), any_u8())
            .map(|(a, b, c)| FuzzOp::SkipIf(a, b, c))
            .boxed(),
    ])
}

/// Asserts that `ops` computes identical architecture under every defense
/// and pinning configuration. Shared by the fuzzer and the pinned
/// regression cases below.
fn assert_ops_equivalent(ops: &[FuzzOp]) -> pl_test::PropResult {
    let program = build_program(ops);
    let reference = observe(&MachineConfig::default_single_core(), &program);
    for cfg in configs() {
        let got = observe(&cfg, &program);
        prop_assert_eq!(
            &reference,
            &got,
            "program diverged under {}\n{}",
            cfg.label(),
            program.listing()
        );
    }
    Ok(())
}

/// Random programs produce identical architecture under every defense and
/// pinning configuration.
#[test]
fn random_programs_equivalent_across_defenses() {
    check_with(
        &Config::with_cases(24),
        "random_programs_equivalent_across_defenses",
        &pl_test::vec_of(fuzz_op_strategy(), 8..60),
        |ops| assert_ops_equivalent(ops),
    );
}

// Historical counterexamples, originally shrunk by proptest and kept in
// `tests/equivalence.proptest-regressions`; pinned here as permanent
// deterministic cases so the bugs they exposed stay covered.

/// Regression: load/store interleaving with a trailing unclosed skip
/// (seed cc195160…).
#[test]
fn regression_load_store_skip_tail() {
    let ops = [
        FuzzOp::Load(161, 0, 0),
        FuzzOp::Store(0, 105, 130),
        FuzzOp::AluImm(47, 84, 100, 93),
        FuzzOp::Load(115, 14, 42),
        FuzzOp::AluImm(56, 55, 147, 21),
        FuzzOp::Store(222, 138, 199),
        FuzzOp::AluImm(133, 144, 201, 78),
        FuzzOp::SkipIf(158, 113, 112),
    ];
    assert_ops_equivalent(&ops).unwrap_or_else(|f| panic!("{f}"));
}

/// Regression: store-first program with a skip guarding ALU/store/load
/// ops (seed ccbb2e22…).
#[test]
fn regression_store_first_guarded_block() {
    let ops = [
        FuzzOp::Store(0, 0, 23),
        FuzzOp::AluImm(60, 51, 94, 80),
        FuzzOp::SkipIf(138, 113, 176),
        FuzzOp::Alu(65, 94, 101, 78),
        FuzzOp::Alu(105, 236, 64, 66),
        FuzzOp::Store(58, 96, 127),
        FuzzOp::Load(14, 156, 247),
        FuzzOp::AluImm(78, 201, 185, -54),
    ];
    assert_ops_equivalent(&ops).unwrap_or_else(|f| panic!("{f}"));
}
