//! The interned stats API (`StatId`/`HistId`) must be observationally
//! identical to the string-keyed API: any interleaving of the two against
//! the same logical counter/histogram names exports the same values, the
//! same text, and the same iteration contents as a pure string-keyed
//! reference.
//!
//! This is the contract the simulator kernel relies on: hot paths resolve
//! names to ids once at construction and use `add_id`/`sample_id`
//! thereafter, while cold paths (tests, debug helpers, workload setup)
//! still go through `add`/`sample` by name.

use pinned_loads::base::{HistId, StatId, Stats};
use pl_test::{any_bool, check_with, one_of, u64_in, usize_in, Config, Strategy, StrategyExt};

/// A single randomized update against a small pool of logical names.
/// `by_id` selects which API the candidate uses; the reference always
/// uses the string API.
#[derive(Clone, Debug)]
enum StatOp {
    Add {
        name: usize,
        delta: u64,
        by_id: bool,
    },
    Incr {
        name: usize,
        by_id: bool,
    },
    Sample {
        name: usize,
        value: u64,
        by_id: bool,
    },
    SampleN {
        name: usize,
        value: u64,
        n: u64,
        by_id: bool,
    },
}

const NAMES: [&str; 5] = [
    "core.cycles",
    "l1.miss",
    "pin.acquired",
    "occ.rob",
    "noc.hops",
];

fn op_strategy() -> impl Strategy<Value = StatOp> {
    let name = || usize_in(0..NAMES.len());
    one_of(vec![
        (name(), u64_in(0..1000), any_bool())
            .map(|(name, delta, by_id)| StatOp::Add { name, delta, by_id })
            .boxed(),
        (name(), any_bool())
            .map(|(name, by_id)| StatOp::Incr { name, by_id })
            .boxed(),
        (name(), u64_in(0..100), any_bool())
            .map(|(name, value, by_id)| StatOp::Sample { name, value, by_id })
            .boxed(),
        (name(), u64_in(0..100), u64_in(0..50), any_bool())
            .map(|(name, value, n, by_id)| StatOp::SampleN {
                name,
                value,
                n,
                by_id,
            })
            .boxed(),
    ])
}

/// Applies `ops` to a candidate that mixes the interned and string APIs
/// (ids resolved lazily, mid-stream, as the kernel does at construction)
/// and to a string-only reference, then compares every observable.
fn assert_apis_equivalent(ops: &[StatOp]) -> pl_test::PropResult {
    let mut candidate = Stats::new();
    let mut reference = Stats::new();
    let mut counter_ids: Vec<Option<StatId>> = vec![None; NAMES.len()];
    let mut hist_ids: Vec<Option<HistId>> = vec![None; NAMES.len()];
    let mut counter_id = |s: &mut Stats, name: usize| {
        *counter_ids[name].get_or_insert_with(|| s.counter_id(NAMES[name]))
    };
    let mut hist_id =
        |s: &mut Stats, name: usize| *hist_ids[name].get_or_insert_with(|| s.hist_id(NAMES[name]));

    for op in ops {
        match *op {
            StatOp::Add { name, delta, by_id } => {
                if by_id {
                    let id = counter_id(&mut candidate, name);
                    candidate.add_id(id, delta);
                } else {
                    candidate.add(NAMES[name], delta);
                }
                reference.add(NAMES[name], delta);
            }
            StatOp::Incr { name, by_id } => {
                if by_id {
                    let id = counter_id(&mut candidate, name);
                    candidate.incr_id(id);
                } else {
                    candidate.incr(NAMES[name]);
                }
                reference.incr(NAMES[name]);
            }
            StatOp::Sample { name, value, by_id } => {
                if by_id {
                    let id = hist_id(&mut candidate, name);
                    candidate.sample_id(id, value);
                } else {
                    candidate.sample(NAMES[name], value);
                }
                reference.sample(NAMES[name], value);
            }
            StatOp::SampleN {
                name,
                value,
                n,
                by_id,
            } => {
                if by_id {
                    let id = hist_id(&mut candidate, name);
                    candidate.sample_n_id(id, value, n);
                } else {
                    for _ in 0..n {
                        candidate.sample(NAMES[name], value);
                    }
                }
                for _ in 0..n {
                    reference.sample(NAMES[name], value);
                }
            }
        }
    }

    // Every observable surface must agree: per-name reads, full iteration
    // (zero-filtered), and the rendered export.
    for name in NAMES {
        pl_test::prop_assert_eq!(candidate.get(name), reference.get(name), "counter {name}");
    }
    let collect = |s: &Stats| {
        s.iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<Vec<_>>()
    };
    pl_test::prop_assert_eq!(collect(&candidate), collect(&reference));
    pl_test::prop_assert_eq!(candidate.to_string(), reference.to_string());
    Ok(())
}

/// Random interleavings of id-based and string-based updates export
/// identically to a string-only reference.
#[test]
fn interned_and_string_apis_are_interchangeable() {
    check_with(
        &Config::with_cases(200),
        "interned_and_string_apis_are_interchangeable",
        &pl_test::vec_of(op_strategy(), 1..80),
        |ops| assert_apis_equivalent(ops),
    );
}

/// Resolving an id for an already-touched name (and vice versa) binds to
/// the same slot: no aliasing, no duplicate rows in the export.
#[test]
fn late_interning_binds_to_existing_names() {
    let mut s = Stats::new();
    s.add("x.count", 3);
    let id = s.counter_id("x.count");
    s.add_id(id, 4);
    assert_eq!(s.get("x.count"), 7);
    assert_eq!(s.get_id(id), 7);
    assert_eq!(s.iter().count(), 1);

    s.sample("x.lat", 10);
    let h = s.hist_id("x.lat");
    s.sample_n_id(h, 10, 2);
    assert_eq!(s.histogram("x.lat").unwrap().count(), 3);
    assert_eq!(s.iter_histograms().count(), 1);
}
