//! Cross-component invariants of the Pinned Loads protocol, checked on
//! contended multicore runs across the full scheme × pin-mode matrix
//! (plus a single-core configuration where the starvation machinery
//! must stay completely idle).
//!
//! All counter lookups use the strict [`Stats::get_known`], so a renamed
//! or never-registered counter fails the test instead of silently
//! reading zero.

use pinned_loads::base::{CoreId, DefenseScheme, MachineConfig, PinMode, PinnedLoadsConfig, Stats};
use pinned_loads::machine::Machine;
use pinned_loads::workloads::{parallel_suite, spec_suite, Scale};

/// Every scheme × pin-mode combination that validates, over `cores`
/// cores.
fn matrix(cores: usize) -> Vec<MachineConfig> {
    let mut out = Vec::new();
    for scheme in [
        DefenseScheme::Unsafe,
        DefenseScheme::Fence,
        DefenseScheme::Dom,
        DefenseScheme::Stt,
        DefenseScheme::Invisible,
    ] {
        for mode in [PinMode::Off, PinMode::Late, PinMode::Early] {
            let mut cfg = if cores == 1 {
                MachineConfig::default_single_core()
            } else {
                MachineConfig::default_multi_core(cores)
            };
            cfg.defense = scheme;
            cfg.pinned_loads = PinnedLoadsConfig::with_mode(mode);
            if cfg.validate().is_ok() {
                out.push(cfg);
            }
        }
    }
    out
}

fn run_suite_with(mode: PinMode, scheme: DefenseScheme) -> Vec<(String, Stats)> {
    let mut cfg = MachineConfig::default_multi_core(4);
    cfg.defense = scheme;
    cfg.pinned_loads = PinnedLoadsConfig::with_mode(mode);
    run_parallel_kernels(&cfg, None)
}

/// Runs the parallel suite (optionally restricted to `names`) under
/// `cfg` and returns each kernel's stats.
fn run_parallel_kernels(cfg: &MachineConfig, names: Option<&[&str]>) -> Vec<(String, Stats)> {
    parallel_suite(4, Scale::Test)
        .into_iter()
        .filter(|w| names.is_none_or(|ns| ns.contains(&w.name.as_str())))
        .map(|w| {
            let mut m = Machine::new(cfg).unwrap();
            w.install(&mut m);
            let res = m
                .run(500_000_000)
                .unwrap_or_else(|e| panic!("`{}` under {}: {e}", w.name, cfg.label()));
            (w.name.clone(), res.stats)
        })
        .collect()
}

/// The bookkeeping relations that must hold under *every* valid scheme
/// × pin-mode combination: aborts pair with writer retries, Clears only
/// follow starred writes, retries imply defers, and with pinning off
/// the entire starvation machinery stays untouched.
fn assert_bookkeeping(label: &str, mode: PinMode, name: &str, stats: &Stats) {
    let aborts = stats.get_known("llc.aborts");
    let retries = stats.get_known("wb.writes_retried");
    assert_eq!(
        aborts, retries,
        "`{name}` under {label}: every abort must come from a deferred write retry"
    );
    let stars = stats.get_known("llc.getx_star");
    let clears = stats.get_known("llc.clears");
    assert!(
        clears <= stars,
        "`{name}` under {label}: a Clear broadcast requires a successful starred \
         write (clears={clears}, stars={stars})"
    );
    if retries > 0 {
        assert!(
            stats.get_known("l1.invs_deferred") > 0,
            "`{name}` under {label}: retried writes imply some sharer deferred"
        );
    }
    if mode == PinMode::Off {
        for key in [
            "pin.pins",
            "l1.invs_deferred",
            "llc.getx_star",
            "llc.clears",
            "pin.inv_stars",
            "l1.back_invs_deferred",
            "llc.evictions_retried",
        ] {
            assert_eq!(
                stats.get_known(key),
                0,
                "`{name}` under {label}: unexpected {key} without pinning"
            );
        }
    }
}

/// Contended kernels that exercise Defer/Abort and the starred retry
/// under Early Pinning, keeping the full-matrix sweep affordable.
const CONTENDED: &[&str] = &["prod_cons", "false_sharing", "migratory"];

/// The bookkeeping relations hold across the full scheme × mode matrix.
#[test]
fn bookkeeping_balances_across_scheme_matrix() {
    for cfg in matrix(4) {
        for (name, stats) in run_parallel_kernels(&cfg, Some(CONTENDED)) {
            assert_bookkeeping(&cfg.label(), cfg.pinned_loads.mode, &name, &stats);
        }
    }
}

/// On a single core there are no sharers: the starvation protocol
/// (Inv*, Defer/Abort, starred retries, Clear broadcasts) must never
/// fire, under any scheme × mode combination.
#[test]
fn single_core_never_uses_starvation_protocol() {
    for cfg in matrix(1) {
        for w in spec_suite(Scale::Test)
            .into_iter()
            .filter(|w| ["stream", "gather", "write_burst"].contains(&w.name.as_str()))
        {
            let mut m = Machine::new(&cfg).unwrap();
            w.install(&mut m);
            let res = m
                .run(500_000_000)
                .unwrap_or_else(|e| panic!("`{}` under {}: {e}", w.name, cfg.label()));
            for key in [
                "llc.getx_star",
                "llc.clears",
                "llc.aborts",
                "pin.inv_stars",
                "l1.invs_deferred",
                "wb.writes_retried",
            ] {
                assert_eq!(
                    res.stats.get_known(key),
                    0,
                    "`{}` under {}: {key} fired with one core",
                    w.name,
                    cfg.label()
                );
            }
        }
    }
}

/// Every aborted write at the directory corresponds to a writer-side
/// retry, across the whole parallel suite (deep sweep of the single
/// combination the old test pinned).
#[test]
fn defer_abort_and_clear_bookkeeping_balances() {
    for (name, stats) in run_suite_with(PinMode::Early, DefenseScheme::Fence) {
        assert_bookkeeping("Fence+EP", PinMode::Early, &name, &stats);
    }
}

/// Without pinning there must be no defers, no starred requests, and no
/// CPT activity at all.
#[test]
fn baseline_never_uses_pinning_machinery() {
    for (name, stats) in run_suite_with(PinMode::Off, DefenseScheme::Fence) {
        assert_bookkeeping("Fence+Comp", PinMode::Off, &name, &stats);
    }
}

/// Pinned loads are never squashed: with Early Pinning active, MCV
/// squashes can only hit unpinned loads, so total squashes must not
/// exceed the baseline's (sanity bound: the machinery does not create
/// squash storms).
#[test]
fn pinning_reduces_mcv_squashes() {
    let base: u64 = run_suite_with(PinMode::Off, DefenseScheme::Dom)
        .iter()
        .map(|(_, s)| s.get_known("squash.mcv_inv"))
        .sum();
    let pinned: u64 = run_suite_with(PinMode::Early, DefenseScheme::Dom)
        .iter()
        .map(|(_, s)| s.get_known("squash.mcv_inv"))
        .sum();
    assert!(
        pinned <= base.max(8),
        "EP should not increase invalidation squashes (base {base}, EP {pinned})"
    );
}

/// The CPT never overflows on these workloads with the default 4 entries
/// (the paper reports < 0.0001 overflows per insert).
#[test]
fn cpt_rarely_overflows() {
    for (name, stats) in run_suite_with(PinMode::Early, DefenseScheme::Fence) {
        let attempts = stats.get_known("cpt.insert_attempts");
        let overflows = stats.get_known("cpt.overflows");
        if attempts > 0 {
            let rate = overflows as f64 / attempts as f64;
            assert!(
                rate < 0.05,
                "`{name}`: CPT overflow rate {rate} is far above the paper's"
            );
        }
    }
}

/// Architectural results of the whole parallel suite match between the
/// unsafe machine and a fully pinned Fence machine.
#[test]
fn parallel_suite_is_architecturally_stable_under_ep() {
    let base_cfg = {
        let mut c = MachineConfig::default_multi_core(4);
        c.defense = DefenseScheme::Unsafe;
        c
    };
    let ep_cfg = {
        let mut c = MachineConfig::default_multi_core(4);
        c.defense = DefenseScheme::Fence;
        c.pinned_loads = PinnedLoadsConfig::with_mode(PinMode::Early);
        c
    };
    for w in parallel_suite(4, Scale::Test) {
        let mut a = Machine::new(&base_cfg).unwrap();
        w.install(&mut a);
        a.run(500_000_000).unwrap();
        let mut b = Machine::new(&ep_cfg).unwrap();
        w.install(&mut b);
        b.run(500_000_000).unwrap();
        for c in 0..4 {
            let reg = pinned_loads::isa::Reg::new(20).unwrap();
            assert_eq!(
                a.reg(CoreId(c), reg),
                b.reg(CoreId(c), reg),
                "`{}` core {c} accumulator diverged",
                w.name
            );
        }
    }
}
