//! Cross-component invariants of the Pinned Loads protocol, checked on
//! contended multicore runs.

use pinned_loads::base::{CoreId, DefenseScheme, MachineConfig, PinMode, PinnedLoadsConfig};
use pinned_loads::machine::Machine;
use pinned_loads::workloads::{parallel_suite, Scale};

fn run_suite_with(
    mode: PinMode,
    scheme: DefenseScheme,
) -> Vec<(String, pinned_loads::base::Stats)> {
    let mut cfg = MachineConfig::default_multi_core(4);
    cfg.defense = scheme;
    cfg.pinned_loads = PinnedLoadsConfig::with_mode(mode);
    parallel_suite(4, Scale::Test)
        .into_iter()
        .map(|w| {
            let mut m = Machine::new(&cfg).unwrap();
            w.install(&mut m);
            let res = m
                .run(500_000_000)
                .unwrap_or_else(|e| panic!("`{}` under {}: {e}", w.name, cfg.label()));
            (w.name.clone(), res.stats)
        })
        .collect()
}

/// Every aborted write at the directory corresponds to a writer-side
/// retry, and Clear broadcasts only follow starred transactions.
#[test]
fn defer_abort_and_clear_bookkeeping_balances() {
    for (name, stats) in run_suite_with(PinMode::Early, DefenseScheme::Fence) {
        let aborts = stats.get("llc.aborts");
        let retries = stats.get("wb.writes_retried");
        assert_eq!(
            aborts, retries,
            "`{name}`: every abort must come from a deferred write retry"
        );
        let stars = stats.get("llc.getx_star");
        let clears = stats.get("llc.clears");
        assert!(
            clears <= stars,
            "`{name}`: a Clear broadcast requires a successful starred write \
             (clears={clears}, stars={stars})"
        );
        if retries > 0 {
            assert!(
                stats.get("l1.invs_deferred") > 0,
                "`{name}`: retried writes imply some sharer deferred"
            );
        }
    }
}

/// Without pinning there must be no defers, no starred requests, and no
/// CPT activity at all.
#[test]
fn baseline_never_uses_pinning_machinery() {
    for (name, stats) in run_suite_with(PinMode::Off, DefenseScheme::Fence) {
        for key in [
            "pin.pins",
            "l1.invs_deferred",
            "llc.getx_star",
            "llc.clears",
            "pin.inv_stars",
            "l1.back_invs_deferred",
            "llc.evictions_retried",
        ] {
            assert_eq!(
                stats.get(key),
                0,
                "`{name}`: unexpected {key} without pinning"
            );
        }
    }
}

/// Pinned loads are never squashed: with Early Pinning active, MCV
/// squashes can only hit unpinned loads, so total squashes must not
/// exceed the baseline's (sanity bound: the machinery does not create
/// squash storms).
#[test]
fn pinning_reduces_mcv_squashes() {
    let base: u64 = run_suite_with(PinMode::Off, DefenseScheme::Dom)
        .iter()
        .map(|(_, s)| s.get("squash.mcv_inv"))
        .sum();
    let pinned: u64 = run_suite_with(PinMode::Early, DefenseScheme::Dom)
        .iter()
        .map(|(_, s)| s.get("squash.mcv_inv"))
        .sum();
    assert!(
        pinned <= base.max(8),
        "EP should not increase invalidation squashes (base {base}, EP {pinned})"
    );
}

/// The CPT never overflows on these workloads with the default 4 entries
/// (the paper reports < 0.0001 overflows per insert).
#[test]
fn cpt_rarely_overflows() {
    for (name, stats) in run_suite_with(PinMode::Early, DefenseScheme::Fence) {
        let attempts = stats.get("cpt.insert_attempts");
        let overflows = stats.get("cpt.overflows");
        if attempts > 0 {
            let rate = overflows as f64 / attempts as f64;
            assert!(
                rate < 0.05,
                "`{name}`: CPT overflow rate {rate} is far above the paper's"
            );
        }
    }
}

/// Architectural results of the whole parallel suite match between the
/// unsafe machine and a fully pinned Fence machine.
#[test]
fn parallel_suite_is_architecturally_stable_under_ep() {
    let base_cfg = {
        let mut c = MachineConfig::default_multi_core(4);
        c.defense = DefenseScheme::Unsafe;
        c
    };
    let ep_cfg = {
        let mut c = MachineConfig::default_multi_core(4);
        c.defense = DefenseScheme::Fence;
        c.pinned_loads = PinnedLoadsConfig::with_mode(PinMode::Early);
        c
    };
    for w in parallel_suite(4, Scale::Test) {
        let mut a = Machine::new(&base_cfg).unwrap();
        w.install(&mut a);
        a.run(500_000_000).unwrap();
        let mut b = Machine::new(&ep_cfg).unwrap();
        w.install(&mut b);
        b.run(500_000_000).unwrap();
        for c in 0..4 {
            let reg = pinned_loads::isa::Reg::new(20).unwrap();
            assert_eq!(
                a.reg(CoreId(c), reg),
                b.reg(CoreId(c), reg),
                "`{}` core {c} accumulator diverged",
                w.name
            );
        }
    }
}
