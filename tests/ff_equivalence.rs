//! Idle-cycle fast-forward must be architecturally and statistically
//! invisible: a run with `cfg.fast_forward` on must be bit-identical to
//! the same run single-stepped — same cycle count, same per-core
//! retirement, same exported counters and histograms, same event trace,
//! and the same errors (deadlock watchdog, cycle limit) at the same
//! cycles.

use pinned_loads::base::{
    CoreId, DefenseScheme, MachineConfig, PinMode, PinnedLoadsConfig, TraceConfig, VerifyConfig,
};
use pinned_loads::isa::{BranchCond, ProgramBuilder, Reg};
use pinned_loads::machine::{Machine, RunError, RunResult, StepOutcome};
use pinned_loads::workloads::{parallel_suite, spec_suite, Scale, Workload};
use pl_verify::Checker;

fn r(i: u8) -> Reg {
    Reg::new(i).unwrap()
}

fn configs() -> Vec<MachineConfig> {
    let mut out = Vec::new();
    for (scheme, pin) in [
        (DefenseScheme::Unsafe, PinMode::Off),
        (DefenseScheme::Fence, PinMode::Off),
        (DefenseScheme::Dom, PinMode::Late),
        (DefenseScheme::Stt, PinMode::Early),
    ] {
        let mut cfg = MachineConfig::default_single_core();
        cfg.defense = scheme;
        cfg.pinned_loads = PinnedLoadsConfig::with_mode(pin);
        out.push(cfg);
    }
    out
}

/// One run of `w` under `cfg` with the given fast-forward setting,
/// reduced to a comparable fingerprint: (cycles, retired/core, full
/// stats text including histograms, trace log).
fn fingerprint(
    mut cfg: MachineConfig,
    w: &Workload,
    fast_forward: bool,
) -> (u64, Vec<u64>, String) {
    cfg.fast_forward = fast_forward;
    let mut m = Machine::new(&cfg).unwrap();
    w.install(&mut m);
    let res: RunResult = m
        .run(500_000_000)
        .unwrap_or_else(|e| panic!("{} under {}: {e}", w.name, cfg.label()));
    (res.cycles, res.retired_per_core, res.stats.to_string())
}

#[test]
fn fast_forward_is_bit_identical_on_spec_kernels() {
    // Kernels chosen to exercise the idle windows fast-forward targets:
    // miss-heavy (long DRAM waits), pointer-chasing (serialized misses),
    // and store-heavy (write-buffer stalls).
    for w in spec_suite(Scale::Test)
        .into_iter()
        .filter(|w| ["gather", "chase_cold", "write_burst"].contains(&w.name.as_str()))
    {
        for cfg in configs() {
            let slow = fingerprint(cfg.clone(), &w, false);
            let fast = fingerprint(cfg.clone(), &w, true);
            assert_eq!(
                slow,
                fast,
                "kernel `{}` diverged under {} with fast-forward",
                w.name,
                cfg.label()
            );
        }
    }
}

#[test]
fn fast_forward_is_bit_identical_across_the_parallel_matrix() {
    // Full scheme × core-count matrix. Core counts below, at, and above
    // the mesh row width exercise different NoC shapes and batching
    // patterns; the pinned configs (Dom+Late, Stt+Early) additionally
    // exercise the periodic CPT- and occupancy-sampling paths, whose
    // samples land on fixed cycle numbers and must be replayed exactly
    // over any fast-forwarded window. The fingerprint includes the full
    // stats text with histograms, so a single missed or doubled sample
    // fails the comparison.
    for cores in [2usize, 4, 8] {
        let suite = parallel_suite(cores, Scale::Test);
        // suite[0]: lock-contended counter (spin + CAS traffic);
        // suite[2]: prod_cons (Defer/Abort + starred-write traffic).
        for w in [&suite[0], &suite[2]] {
            for cfg_base in configs() {
                let mut cfg = MachineConfig::default_multi_core(cores);
                cfg.defense = cfg_base.defense;
                cfg.pinned_loads = cfg_base.pinned_loads.clone();
                let slow = fingerprint(cfg.clone(), w, false);
                let fast = fingerprint(cfg.clone(), w, true);
                assert_eq!(
                    slow,
                    fast,
                    "parallel kernel `{}` on {cores} cores diverged under {} \
                     with fast-forward",
                    w.name,
                    cfg.label()
                );
                // The comparison above only proves sampling is *consistent*;
                // prove it actually ran so the matrix covers it.
                assert!(
                    slow.2.contains("occ.rob"),
                    "occupancy sampling missing from `{}` on {cores} cores under {}",
                    w.name,
                    cfg.label()
                );
                if cfg.pinned_loads.mode != PinMode::Off {
                    assert!(
                        slow.2.contains("cpt.peak"),
                        "CPT sampling missing from `{}` on {cores} cores under {}",
                        w.name,
                        cfg.label()
                    );
                }
            }
        }
    }
}

/// Spin parking must be exactly as invisible as fast-forward itself: a
/// run with `cfg.spin_parking` on is bit-identical to its parking-off
/// twin — cycles, per-core retirement, every counter and histogram
/// sample (occupancy and CPT samples land on fixed cycle numbers, so a
/// parked period replayed with a wrong phase would double or drop one),
/// and the committed memory image. The spin-heavy relay kernel makes the
/// detector actually fire under Unsafe, where spinners stay continuously
/// active. Under Fence a spinner's load waits at the ROB head, the
/// resulting quiet cycles send the core through the ordinary
/// Quiet/Parked states, and any park-state excursion closes the spin
/// window — quiet-parking already absorbs those waits, so the detector
/// conservatively never fires there. The pinned schemes may park or not
/// (a window qualifies only when `pin.pins` never moved inside it);
/// whichever way the detector decides, the twins must agree bit for
/// bit, which is the assertion that matters.
#[test]
fn spin_parking_is_bit_identical_across_the_matrix() {
    for cores in [2usize, 4, 8] {
        let suite = parallel_suite(cores, Scale::Test);
        let relay = suite
            .iter()
            .find(|w| w.name == "spin_relay")
            .expect("spin_relay in the parallel suite");
        for cfg_base in configs() {
            let mut cfg = MachineConfig::default_multi_core(cores);
            cfg.defense = cfg_base.defense;
            cfg.pinned_loads = cfg_base.pinned_loads.clone();
            cfg.fast_forward = true;
            let label = format!("spin_relay on {cores} cores under {}", cfg.label());
            let run = |spin_parking: bool| {
                let mut cfg = cfg.clone();
                cfg.spin_parking = spin_parking;
                let mut m = Machine::new(&cfg).unwrap();
                relay.install(&mut m);
                let res = m
                    .run(500_000_000)
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                (
                    (
                        res.cycles,
                        res.retired_per_core,
                        res.stats.to_string(),
                        m.memory_words(),
                    ),
                    m.spin_parks(),
                )
            };
            let (off, off_parks) = run(false);
            let (on, on_parks) = run(true);
            assert_eq!(off, on, "{label}: spin parking changed the run");
            assert_eq!(off_parks, 0, "{label}: parked with spin_parking off");
            assert!(
                off.2.contains("occ.rob"),
                "{label}: occupancy samples missing from the fingerprint"
            );
            if cfg.defense == DefenseScheme::Unsafe {
                assert!(on_parks > 0, "{label}: the spin detector never parked");
            }
            if cfg.pinned_loads.mode != PinMode::Off {
                assert!(
                    off.2.contains("cpt.peak"),
                    "{label}: CPT samples missing from the fingerprint"
                );
            }
        }
    }
}

/// The attack gadget workloads are the most timing-sensitive programs in
/// the tree — their whole payload is a covert timing channel — so they
/// make a sharp spin-parking oracle: every gadget spins on flags
/// (victim on READY, observer on TDONE/DONE), and parking any of those
/// spins must still replay the exact cycle-level interleaving the
/// channel depends on.
#[test]
fn spin_parking_is_bit_identical_on_attack_gadgets() {
    use pinned_loads::workloads::attack::attack_suite;
    for sc in attack_suite(2) {
        for cfg_base in configs() {
            let mut cfg = MachineConfig::default_multi_core(2);
            cfg.defense = cfg_base.defense;
            cfg.pinned_loads = cfg_base.pinned_loads.clone();
            cfg.fast_forward = true;
            let label = format!("{} under {}", sc.workload.name, cfg.label());
            let run = |spin_parking: bool| {
                let mut cfg = cfg.clone();
                cfg.spin_parking = spin_parking;
                let mut m = Machine::new(&cfg).unwrap();
                sc.workload.install(&mut m);
                let res = m
                    .run(500_000_000)
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                (
                    res.cycles,
                    res.retired_per_core,
                    res.stats.to_string(),
                    m.memory_words(),
                )
            };
            assert_eq!(
                run(false),
                run(true),
                "{label}: spin parking changed the run"
            );
        }
    }
}

/// The retired-load digest leg of the twin matrix: the invariant checker
/// records an architectural fingerprint of every committed load, and
/// spin replay cannot re-emit check events — which is exactly why
/// `verify.enabled` gates spin parking off. This test locks both halves
/// of that contract in: checker-attached twins with `spin_parking` on
/// and off produce identical retired-load digests (and never park), and
/// their cycles/stats equal the plain parking-on run's, so the digest
/// transitively covers the parked runs too.
#[test]
fn spin_parking_twins_agree_on_retired_load_digests() {
    let cores = 4usize;
    let suite = parallel_suite(cores, Scale::Test);
    let relay = suite
        .iter()
        .find(|w| w.name == "spin_relay")
        .expect("spin_relay in the parallel suite");
    for cfg_base in configs() {
        let mut cfg = MachineConfig::default_multi_core(cores);
        cfg.defense = cfg_base.defense;
        cfg.pinned_loads = cfg_base.pinned_loads.clone();
        cfg.fast_forward = true;
        let label = format!("spin_relay on {cores} cores under {}", cfg.label());

        let checked_run = |spin_parking: bool| {
            let mut cfg = cfg.clone();
            cfg.spin_parking = spin_parking;
            cfg.verify.enabled = true;
            let mut m = Machine::new(&cfg).unwrap();
            relay.install(&mut m);
            m.set_check_observer(Box::new(Checker::new()));
            let res = m
                .run(500_000_000)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(
                m.spin_parks(),
                0,
                "{label}: parked under verify.enabled (replay would lose check events)"
            );
            let fp = checked_fingerprint(&mut m, &res);
            (res.cycles, res.stats.to_string(), fp)
        };
        let (off_cycles, off_stats, off_fp) = checked_run(false);
        let (on_cycles, on_stats, on_fp) = checked_run(true);
        assert_eq!(
            off_fp, on_fp,
            "{label}: checker twins diverged (digests included)"
        );

        // Anchor the checker twins to the plain parking-on run: same
        // cycles, same stats — so the digest they agree on describes the
        // parked run's architectural behavior too.
        let mut plain_cfg = cfg.clone();
        plain_cfg.spin_parking = true;
        let mut m = Machine::new(&plain_cfg).unwrap();
        relay.install(&mut m);
        let res = m
            .run(500_000_000)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!((res.cycles, res.stats.to_string()), (off_cycles, off_stats));
        assert_eq!((res.cycles, res.stats.to_string()), (on_cycles, on_stats));
    }
}

#[test]
fn fast_forward_preserves_event_traces() {
    let mut cfg = MachineConfig::default_single_core();
    cfg.defense = DefenseScheme::Dom;
    cfg.trace = TraceConfig::enabled();
    let mut b = ProgramBuilder::new();
    let top = b.new_label();
    b.addi(r(1), Reg::ZERO, 0x4000);
    b.addi(r(2), Reg::ZERO, 32);
    b.bind(top).unwrap();
    b.load(r(3), r(1), 0); // cold misses: long quiet DRAM waits
    b.addi(r(1), r(1), 0x1000);
    b.addi(r(2), r(2), -1);
    b.branch(BranchCond::Ne, r(2), Reg::ZERO, top);
    let program = b.build().unwrap();

    let run = |ff: bool| {
        let mut cfg = cfg.clone();
        cfg.fast_forward = ff;
        let mut m = Machine::new(&cfg).unwrap();
        m.load_program(CoreId(0), program.clone());
        let res = m.run(10_000_000).unwrap();
        (res.cycles, res.trace.expect("tracing enabled"))
    };
    let (slow_cycles, slow_trace) = run(false);
    let (fast_cycles, fast_trace) = run(true);
    assert_eq!(slow_cycles, fast_cycles);
    assert_eq!(slow_trace, fast_trace, "trace logs diverged");
}

/// The invariant checker must be as invisible as fast-forward: a run
/// with `verify.enabled` and an attached observer is bit-identical to
/// the same run without it — same cycles, same retirement, same
/// counters and histograms (the checker only *observes*; it never
/// perturbs scheduling or stats).
#[test]
fn invariant_checker_is_bit_invisible() {
    let suite = parallel_suite(4, Scale::Test);
    let pw = &suite[2]; // prod_cons: heavy Defer/Abort + starred traffic
    for cfg_base in configs() {
        let mut cfg = MachineConfig::default_multi_core(4);
        cfg.defense = cfg_base.defense;
        cfg.pinned_loads = cfg_base.pinned_loads.clone();
        let off = fingerprint(cfg.clone(), pw, true);
        let on = {
            let mut cfg = cfg.clone();
            cfg.fast_forward = true;
            cfg.verify.enabled = true;
            let mut m = Machine::new(&cfg).unwrap();
            pw.install(&mut m);
            m.set_check_observer(Box::new(pl_verify::Checker::new()));
            let res = m
                .run(500_000_000)
                .unwrap_or_else(|e| panic!("{} under {}: {e}", pw.name, cfg.label()));
            (res.cycles, res.retired_per_core, res.stats.to_string())
        };
        assert_eq!(
            off,
            on,
            "`{}` diverged under {} with the checker attached",
            pw.name,
            cfg.label()
        );
    }
}

/// Checker-on runs also preserve event traces exactly (trace and check
/// sinks are independent observers of the same schedule).
#[test]
fn invariant_checker_preserves_event_traces() {
    let mut cfg = MachineConfig::default_single_core();
    cfg.defense = DefenseScheme::Dom;
    cfg.trace = TraceConfig::enabled();
    let mut b = ProgramBuilder::new();
    let top = b.new_label();
    b.addi(r(1), Reg::ZERO, 0x4000);
    b.addi(r(2), Reg::ZERO, 32);
    b.bind(top).unwrap();
    b.load(r(3), r(1), 0);
    b.addi(r(1), r(1), 0x1000);
    b.addi(r(2), r(2), -1);
    b.branch(BranchCond::Ne, r(2), Reg::ZERO, top);
    let program = b.build().unwrap();

    let run = |verify: bool| {
        let mut cfg = cfg.clone();
        if verify {
            cfg.verify = VerifyConfig::enabled();
        }
        let mut m = Machine::new(&cfg).unwrap();
        m.load_program(CoreId(0), program.clone());
        if verify {
            m.set_check_observer(Box::new(pl_verify::Checker::new()));
        }
        let res = m.run(10_000_000).unwrap();
        (res.cycles, res.trace.expect("tracing enabled"))
    };
    let (off_cycles, off_trace) = run(false);
    let (on_cycles, on_trace) = run(true);
    assert_eq!(off_cycles, on_cycles);
    assert_eq!(off_trace, on_trace, "trace logs diverged");
}

#[test]
fn fast_forward_reports_identical_deadlocks() {
    // A spin loop that never sees its flag, under a watchdog too tight to
    // tolerate the miss latency: the run must fail at the same cycle with
    // the same retirement count and the same diagnosis either way.
    let run = |ff: bool| {
        let mut cfg = MachineConfig::default_multi_core(2);
        cfg.trace = TraceConfig::enabled();
        cfg.fast_forward = ff;
        let mut m = Machine::new(&cfg).unwrap();
        let mut p1 = ProgramBuilder::new();
        let spin = p1.new_label();
        p1.addi(r(3), Reg::ZERO, 0xa000);
        p1.bind(spin).unwrap();
        p1.load(r(4), r(3), 0);
        p1.branch(BranchCond::Eq, r(4), Reg::ZERO, spin);
        m.load_program(CoreId(1), p1.build().unwrap());
        m.set_watchdog_cycles(20);
        match m.run(1_000_000) {
            Err(RunError::Deadlock {
                cycle,
                retired,
                diagnosis,
            }) => (
                cycle,
                retired,
                diagnosis.state.clone(),
                diagnosis.recent_events.clone(),
            ),
            other => panic!("expected Deadlock, got {other:?}"),
        }
    };
    assert_eq!(run(false), run(true));
}

/// Everything a checkpoint must preserve, reduced to one comparable
/// value: final cycle count, per-core retirement, the full exported
/// stats text (counters *and* histograms), the committed memory image,
/// and the invariant checker's per-core retired-load digest — an
/// architectural fingerprint of every load the machine ever committed.
type CheckpointFingerprint = (u64, Vec<u64>, String, Vec<(u64, u64)>, Vec<(u64, u64)>);

fn checked_fingerprint(m: &mut Machine, res: &RunResult) -> CheckpointFingerprint {
    let mut observer = m.take_check_observer().expect("checker attached");
    let checker = observer
        .as_any_mut()
        .downcast_mut::<Checker>()
        .expect("observer is a Checker");
    let report = checker.report();
    assert_eq!(report.total_violations, 0, "{:?}", report.violations);
    let digests = (0..res.retired_per_core.len())
        .map(|c| checker.load_digest(CoreId(c)))
        .collect();
    (
        res.cycles,
        res.retired_per_core.clone(),
        res.stats.to_string(),
        m.memory_words(),
        digests,
    )
}

/// Snapshot/restore must be bit-invisible across the whole defense ×
/// core-count × fast-forward matrix: pausing mid-run, snapshotting,
/// dropping the machine, restoring the checkpoint into a *fresh*
/// machine (with the check observer handed across, since checkpoints
/// deliberately exclude it), and running to completion must reproduce
/// the uninterrupted run exactly — cycles, retirement, counters,
/// histograms, memory image, and the retired-load digest stream.
#[test]
fn checkpoint_restore_is_bit_identical_across_the_matrix() {
    let spec = spec_suite(Scale::Test);
    let gather = spec.iter().find(|w| w.name == "gather").unwrap();
    for cores in [1usize, 4] {
        let parallel = parallel_suite(cores.max(2), Scale::Test);
        let w = if cores == 1 { gather } else { &parallel[2] };
        for cfg_base in configs() {
            for ff in [false, true] {
                let mut cfg = if cores == 1 {
                    MachineConfig::default_single_core()
                } else {
                    MachineConfig::default_multi_core(cores)
                };
                cfg.defense = cfg_base.defense;
                cfg.pinned_loads = cfg_base.pinned_loads.clone();
                cfg.fast_forward = ff;
                cfg.verify.enabled = true;
                let label = format!(
                    "kernel `{}` on {cores} cores under {} (ff={ff})",
                    w.name,
                    cfg.label()
                );

                // Reference: one uninterrupted run.
                let mut m = Machine::new(&cfg).unwrap();
                w.install(&mut m);
                m.set_check_observer(Box::new(Checker::new()));
                let res = m
                    .run(500_000_000)
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                let reference = checked_fingerprint(&mut m, &res);

                // Checkpointed: pause mid-run, snapshot, *drop* the
                // original machine, restore, finish on the clone.
                let mut m = Machine::new(&cfg).unwrap();
                w.install(&mut m);
                m.set_check_observer(Box::new(Checker::new()));
                let pause = (reference.0 / 2).max(1);
                let outcome = m
                    .run_until(500_000_000, pause)
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                let StepOutcome::Paused = outcome else {
                    panic!("{label}: finished before the midpoint pause at {pause}");
                };
                let cp = m.snapshot();
                assert!(cp.cycle() >= pause, "{label}: snapshot before pause bound");
                let observer = m.take_check_observer().expect("checker attached");
                drop(m);
                let mut m = Machine::restore(&cp);
                m.set_check_observer(observer);
                let res = m
                    .run(500_000_000)
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                let restored = checked_fingerprint(&mut m, &res);

                assert_eq!(reference, restored, "{label}: checkpointed run diverged");
            }
        }
    }
}

#[test]
fn fast_forward_reports_identical_cycle_limits() {
    let run = |ff: bool| {
        let mut cfg = MachineConfig::default_single_core();
        cfg.fast_forward = ff;
        let mut b = ProgramBuilder::new();
        let spin = b.new_label();
        b.addi(r(1), Reg::ZERO, 0x8000);
        b.bind(spin).unwrap();
        b.load(r(2), r(1), 0); // periodic misses leave idle gaps
        b.addi(r(1), r(1), 0x1000);
        b.jump(spin);
        let mut m = Machine::new(&cfg).unwrap();
        m.load_program(CoreId(0), b.build().unwrap());
        match m.run(50_000) {
            Err(RunError::CycleLimit { limit, retired }) => (limit, retired),
            other => panic!("expected CycleLimit, got {other:?}"),
        }
    };
    assert_eq!(run(false), run(true));
}
