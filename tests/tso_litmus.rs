//! TSO litmus tests, run end to end through the pipeline, coherence
//! protocol, and (where enabled) the pinning machinery.
//!
//! The paper's correctness hinges on TSO being preserved: a load's value
//! must still be valid when it retires, enforced by squashing
//! performed-but-unretired loads whose line is invalidated or evicted
//! (Section 2) — or, with Pinned Loads, by denying those invalidations.
//! These tests check the *forbidden outcomes* never materialize under any
//! configuration.

use pinned_loads::base::{Addr, CoreId, DefenseScheme, MachineConfig, PinMode, PinnedLoadsConfig};
use pinned_loads::isa::{AluOp, BranchCond, ProgramBuilder, Reg};
use pinned_loads::machine::Machine;

fn r(i: u8) -> Reg {
    Reg::new(i).unwrap()
}

fn all_configs(cores: usize) -> Vec<MachineConfig> {
    let mut out = Vec::new();
    for scheme in [
        DefenseScheme::Unsafe,
        DefenseScheme::Fence,
        DefenseScheme::Dom,
        DefenseScheme::Stt,
    ] {
        for pin in [PinMode::Off, PinMode::Late, PinMode::Early] {
            if scheme == DefenseScheme::Unsafe && pin != PinMode::Off {
                continue;
            }
            let mut cfg = MachineConfig::default_multi_core(cores);
            cfg.defense = scheme;
            cfg.pinned_loads = PinnedLoadsConfig::with_mode(pin);
            out.push(cfg);
        }
    }
    out
}

/// Message passing (MP): writer does `data = i; flag = i`; reader does
/// `f = flag; d = data`. TSO forbids observing `d < f` — that would mean
/// the reader's younger data-load was effectively reordered before its
/// older flag-load across the writer's ordered stores.
#[test]
fn message_passing_forbidden_outcome_never_observed() {
    const DATA: u64 = 0x1_0000;
    const FLAG: u64 = 0x2_0000;
    const ROUNDS: i64 = 300;

    let writer = || {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.addi(r(1), Reg::ZERO, DATA as i64);
        b.addi(r(2), Reg::ZERO, FLAG as i64);
        b.addi(r(3), Reg::ZERO, 0);
        b.addi(r(4), Reg::ZERO, ROUNDS);
        b.bind(top).unwrap();
        b.addi(r(3), r(3), 1);
        b.store(r(3), r(1), 0); // data = i
        b.store(r(3), r(2), 0); // flag = i   (TSO: ordered after data)
        b.branch(BranchCond::Ne, r(3), r(4), top);
        b.build().unwrap()
    };
    let reader = || {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        let ok = b.new_label();
        b.addi(r(1), Reg::ZERO, DATA as i64);
        b.addi(r(2), Reg::ZERO, FLAG as i64);
        b.addi(r(4), Reg::ZERO, 2 * ROUNDS);
        b.addi(r(30), Reg::ZERO, 0); // violation counter
        b.bind(top).unwrap();
        b.load(r(10), r(2), 0); // f = flag   (older)
        b.load(r(11), r(1), 0); // d = data   (younger)
        b.branch(BranchCond::GeU, r(11), r(10), ok);
        b.addi(r(30), r(30), 1); // d < f: forbidden under TSO
        b.bind(ok).unwrap();
        b.addi(r(4), r(4), -1);
        b.branch(BranchCond::Ne, r(4), Reg::ZERO, top);
        b.build().unwrap()
    };

    for cfg in all_configs(2) {
        let mut m = Machine::new(&cfg).unwrap();
        m.load_program(CoreId(0), writer());
        m.load_program(CoreId(1), reader());
        m.run(200_000_000)
            .unwrap_or_else(|e| panic!("{}: {e}", cfg.label()));
        assert_eq!(
            m.reg(CoreId(1), r(30)),
            0,
            "TSO violation (d < f observed) under {}",
            cfg.label()
        );
    }
}

/// Store buffering (SB): both cores store then load the other's
/// location. TSO *allows* r1 = r2 = 0; the test checks the machine
/// completes and the stores are both globally visible at the end.
#[test]
fn store_buffering_completes_and_drains() {
    const X: u64 = 0x3_0000;
    const Y: u64 = 0x4_0000;
    let prog = |mine: u64, theirs: u64| {
        let mut b = ProgramBuilder::new();
        b.addi(r(1), Reg::ZERO, mine as i64);
        b.addi(r(2), Reg::ZERO, theirs as i64);
        b.addi(r(3), Reg::ZERO, 1);
        b.store(r(3), r(1), 0);
        b.load(r(10), r(2), 0);
        b.build().unwrap()
    };
    for cfg in all_configs(2) {
        let mut m = Machine::new(&cfg).unwrap();
        m.load_program(CoreId(0), prog(X, Y));
        m.load_program(CoreId(1), prog(Y, X));
        m.run(10_000_000).unwrap();
        // Both stores must have drained to memory.
        assert_eq!(m.read_mem(Addr::new(X)), 1, "{}", cfg.label());
        assert_eq!(m.read_mem(Addr::new(Y)), 1, "{}", cfg.label());
        // Each loaded value is 0 or 1; both-zero is legal under TSO.
        for c in 0..2 {
            assert!(m.reg(CoreId(c), r(10)) <= 1, "{}", cfg.label());
        }
    }
}

/// MFENCE upgrades store buffering to sequential consistency: with a
/// fence between the store and the load, `r1 = r2 = 0` becomes forbidden.
#[test]
fn store_buffering_with_mfence_forbids_both_zero() {
    const X: u64 = 0x5_0000;
    const Y: u64 = 0x6_0000;
    let prog = |mine: u64, theirs: u64| {
        let mut b = ProgramBuilder::new();
        b.addi(r(1), Reg::ZERO, mine as i64);
        b.addi(r(2), Reg::ZERO, theirs as i64);
        b.addi(r(3), Reg::ZERO, 1);
        b.store(r(3), r(1), 0);
        b.mfence();
        b.load(r(10), r(2), 0);
        b.build().unwrap()
    };
    for cfg in all_configs(2) {
        let mut m = Machine::new(&cfg).unwrap();
        m.load_program(CoreId(0), prog(X, Y));
        m.load_program(CoreId(1), prog(Y, X));
        m.run(10_000_000).unwrap();
        let r1 = m.reg(CoreId(0), r(10));
        let r2 = m.reg(CoreId(1), r(10));
        assert!(
            r1 == 1 || r2 == 1,
            "SC violation with fences: r1={r1} r2={r2} under {}",
            cfg.label()
        );
    }
}

/// Coherence (single location): concurrent atomic increments from every
/// core must sum exactly, under every configuration.
#[test]
fn single_location_atomics_are_coherent() {
    const COUNTER: u64 = 0x7_0000;
    const PER_CORE: i64 = 50;
    let prog = || {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.addi(r(1), Reg::ZERO, COUNTER as i64);
        b.addi(r(2), Reg::ZERO, PER_CORE);
        b.addi(r(3), Reg::ZERO, 1);
        b.bind(top).unwrap();
        b.atomic_add(r(4), r(3), r(1), 0);
        b.addi(r(2), r(2), -1);
        b.branch(BranchCond::Ne, r(2), Reg::ZERO, top);
        b.build().unwrap()
    };
    for cfg in all_configs(4) {
        let mut m = Machine::new(&cfg).unwrap();
        for c in 0..4 {
            m.load_program(CoreId(c), prog());
        }
        m.run(200_000_000).unwrap();
        assert_eq!(
            m.read_mem(Addr::new(COUNTER)),
            4 * PER_CORE as u64,
            "lost update under {}",
            cfg.label()
        );
    }
}

/// Loads observing a remote writer must be monotone: once the reader sees
/// value v, it never later reads an older value (per-location coherence
/// order), even across squashes and re-executions.
#[test]
fn per_location_reads_are_monotone() {
    const CELL: u64 = 0x8_0000;
    let writer = || {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.addi(r(1), Reg::ZERO, CELL as i64);
        b.addi(r(3), Reg::ZERO, 0);
        b.addi(r(4), Reg::ZERO, 200);
        b.bind(top).unwrap();
        b.addi(r(3), r(3), 1);
        b.store(r(3), r(1), 0);
        b.branch(BranchCond::Ne, r(3), r(4), top);
        b.build().unwrap()
    };
    let reader = || {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        let ok = b.new_label();
        b.addi(r(1), Reg::ZERO, CELL as i64);
        b.addi(r(4), Reg::ZERO, 400);
        b.addi(r(9), Reg::ZERO, 0); // last seen
        b.addi(r(30), Reg::ZERO, 0); // violations
        b.bind(top).unwrap();
        b.load(r(10), r(1), 0);
        b.branch(BranchCond::GeU, r(10), r(9), ok);
        b.addi(r(30), r(30), 1);
        b.bind(ok).unwrap();
        b.alu(AluOp::Add, r(9), r(10), 0i64);
        b.addi(r(4), r(4), -1);
        b.branch(BranchCond::Ne, r(4), Reg::ZERO, top);
        b.build().unwrap()
    };
    for cfg in all_configs(2) {
        let mut m = Machine::new(&cfg).unwrap();
        m.load_program(CoreId(0), writer());
        m.load_program(CoreId(1), reader());
        m.run(200_000_000).unwrap();
        assert_eq!(
            m.reg(CoreId(1), r(30)),
            0,
            "non-monotone reads under {}",
            cfg.label()
        );
    }
}
