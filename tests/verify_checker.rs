//! Integration tests for `pl-verify`: the live invariant checker, the
//! cross-scheme differential oracle, seeded fault injection, and the
//! mutation tests proving the checker actually catches broken
//! invariants (a checker that never fires is worse than none).

use pinned_loads::base::{DefenseScheme, MachineConfig, Mutation, PinMode, PinnedLoadsConfig};
use pinned_loads::workloads::{parallel_suite, spec_suite, Scale};
use pl_test::{u64_in, Config};
use pl_verify::{differential_check, faulted, run_checked, scheme_configs};

const MAX_CYCLES: u64 = 500_000_000;

fn ep_cfg(cores: usize) -> MachineConfig {
    let mut cfg = if cores == 1 {
        MachineConfig::default_single_core()
    } else {
        MachineConfig::default_multi_core(cores)
    };
    cfg.defense = DefenseScheme::Fence;
    cfg.pinned_loads = PinnedLoadsConfig::with_mode(PinMode::Early);
    cfg
}

/// The live checker finds no violations on contended kernels under any
/// of the six evaluated schemes.
#[test]
fn checker_holds_across_schemes_on_contended_kernels() {
    let kernels = ["prod_cons", "false_sharing", "migratory"];
    for cfg in scheme_configs(4) {
        for w in parallel_suite(4, Scale::Test)
            .iter()
            .filter(|w| kernels.contains(&w.name.as_str()))
        {
            let (_, report) = run_checked(&cfg, w, MAX_CYCLES)
                .unwrap_or_else(|e| panic!("`{}` under {}: {e}", w.name, cfg.label()));
            assert!(report.ok(), "`{}` under {}: {report}", w.name, cfg.label());
            assert!(report.events > 0 || cfg.pinned_loads.mode == PinMode::Off);
        }
    }
}

/// The checker also holds on a single-core machine, where snapshots
/// still exercise SWMR and the pin model but the starvation protocol
/// stays idle.
#[test]
fn checker_holds_on_single_core() {
    for cfg in scheme_configs(1) {
        for w in spec_suite(Scale::Test).iter().take(3) {
            let (_, report) = run_checked(&cfg, w, MAX_CYCLES)
                .unwrap_or_else(|e| panic!("`{}` under {}: {e}", w.name, cfg.label()));
            assert!(report.ok(), "`{}` under {}: {report}", w.name, cfg.label());
        }
    }
}

/// Defenses may change timing, never results: every parallel kernel
/// commits bit-identical architectural state under all six schemes.
#[test]
fn differential_oracle_passes_parallel_suite() {
    let cfgs = scheme_configs(4);
    for w in parallel_suite(4, Scale::Test) {
        let report = differential_check(&w, &cfgs, MAX_CYCLES)
            .unwrap_or_else(|e| panic!("`{}`: {e}", w.name));
        assert!(report.ok(), "{report}");
    }
}

/// Single-core runs additionally compare the full register file and the
/// retired-load value stream.
#[test]
fn differential_oracle_passes_spec_kernels() {
    let cfgs = scheme_configs(1);
    for w in spec_suite(Scale::Test).iter().take(4) {
        let report = differential_check(w, &cfgs, MAX_CYCLES)
            .unwrap_or_else(|e| panic!("`{}`: {e}", w.name));
        assert!(report.ok(), "{report}");
    }
}

/// Seeded fault injection: delaying directory-bound NoC messages is
/// protocol-legal, so under any seed the checker must stay quiet and
/// the architectural results must match the unperturbed run. Driven by
/// the `pl-test` generators; failures print a `PL_TEST_SEED` for exact
/// replay.
#[test]
fn fault_injection_preserves_invariants_and_results() {
    let suite = parallel_suite(4, Scale::Test);
    let w = suite
        .iter()
        .find(|w| w.name == "prod_cons")
        .expect("kernel exists");
    let (_, base_report) = run_checked(&ep_cfg(4), w, MAX_CYCLES).unwrap();
    assert!(base_report.ok(), "{base_report}");
    pl_test::check_with(
        &Config::with_cases(6),
        "faulted_delivery_is_invisible",
        &(u64_in(0..u64::MAX), u64_in(1..5)),
        |&(seed, delay)| {
            let cfg = faulted(ep_cfg(4), seed, delay);
            let (_, report) = run_checked(&cfg, w, MAX_CYCLES)
                .map_err(|e| pl_test::PropFail::new(format!("run failed: {e}")))?;
            pl_test::prop_assert!(report.ok(), "seed {seed:#x} delay {delay}: {report}");
            // Timing (cycles, spin iterations) may shift; committed
            // architectural state may not.
            let diff = differential_check(w, &[ep_cfg(4), cfg], MAX_CYCLES)
                .map_err(|e| pl_test::PropFail::new(format!("diff failed: {e}")))?;
            pl_test::prop_assert!(diff.ok(), "seed {seed:#x} delay {delay}: {diff}");
            Ok(())
        },
    );
}

/// Mutation test: a directory that silently drops a Clear broadcast
/// must be caught via the starred-transaction/Clear pairing invariant.
/// The unmutated run proves the test is not vacuous (starred commits
/// actually happen), then the mutated run must produce the violation.
#[test]
fn checker_catches_dropped_clear_broadcast() {
    let suite = parallel_suite(4, Scale::Test);
    let w = suite
        .iter()
        .find(|w| w.name == "prod_cons")
        .expect("kernel exists");

    let (res, report) = run_checked(&ep_cfg(4), w, MAX_CYCLES).unwrap();
    assert!(report.ok(), "clean run must be clean: {report}");
    assert!(
        res.stats.get_known("llc.getx_star") > 0,
        "vacuous: no starred writes means DropClear has nothing to drop"
    );

    let mut cfg = ep_cfg(4);
    cfg.verify.enabled = true;
    cfg.verify.mutation = Mutation::DropClear;
    let (res, report) = run_checked(&cfg, w, MAX_CYCLES).unwrap();
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == "starred-clear-pairing"),
        "DropClear went undetected: {report}"
    );
    // The mutated directory really did skip the broadcast.
    assert!(
        res.stats.get_known("llc.getx_star") > res.stats.get_known("llc.clears"),
        "mutation did not suppress any Clear"
    );
}

/// Mutation test: a core that invalidates a pinned line instead of
/// deferring must be caught via the pinned-line-invalidated invariant
/// (Section 3.2: pinned lines survive until unpin).
#[test]
fn checker_catches_ignored_pin_on_invalidation() {
    let suite = parallel_suite(4, Scale::Test);
    let w = suite
        .iter()
        .find(|w| w.name == "prod_cons")
        .expect("kernel exists");

    let (res, report) = run_checked(&ep_cfg(4), w, MAX_CYCLES).unwrap();
    assert!(report.ok(), "clean run must be clean: {report}");
    assert!(
        res.stats.get_known("l1.invs_deferred") > 0,
        "vacuous: no Inv ever hit a pinned line, the mutation cannot fire"
    );

    let mut cfg = ep_cfg(4);
    cfg.verify.enabled = true;
    cfg.verify.mutation = Mutation::IgnorePinOnInv;
    let (_, report) = run_checked(&cfg, w, MAX_CYCLES).unwrap();
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == "pinned-line-invalidated"),
        "IgnorePinOnInv went undetected: {report}"
    );
}

/// The strict stats lookup itself: a protocol counter that never fired
/// is still known (pre-registered by its component), while a typo'd
/// name panics instead of silently reading zero.
#[test]
fn strict_stats_lookup_rejects_unknown_names() {
    let suite = parallel_suite(4, Scale::Test);
    let w = &suite[0];
    let mut cfg = MachineConfig::default_multi_core(4);
    cfg.defense = DefenseScheme::Unsafe;
    let mut m = pinned_loads::machine::Machine::new(&cfg).unwrap();
    w.install(&mut m);
    let res = m.run(MAX_CYCLES).unwrap();
    // Known-but-zero: the unsafe machine never defers an invalidation.
    assert_eq!(res.stats.get_known("l1.invs_deferred"), 0);
    assert_eq!(res.stats.try_get("llc.getx_staar"), None);
    let stats = res.stats;
    let panic = std::panic::catch_unwind(move || stats.get_known("llc.getx_staar"));
    assert!(panic.is_err(), "typo'd counter name must panic");
}
