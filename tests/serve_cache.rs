//! End-to-end tests of `plsim serve`'s job server: the content-addressed
//! result cache must serve repeats byte-identically, trace-carrying
//! results must never be cached, and a worker killed mid-job must resume
//! from its last checkpoint and still produce the exact result an
//! uninterrupted run would have.

use std::path::{Path, PathBuf};
use std::thread::JoinHandle;

use pinned_loads::base::{DefenseScheme, MachineConfig, PinMode, PinnedLoadsConfig, TraceConfig};
use pinned_loads::bench::serve::{self, ServeOptions};
use pinned_loads::machine::{Machine, StepOutcome};
use pinned_loads::workloads::{spec_suite, Scale, Workload};

fn test_workload() -> Workload {
    spec_suite(Scale::Test)
        .into_iter()
        .find(|w| w.name == "stream")
        .expect("stream kernel exists")
}

fn test_config() -> MachineConfig {
    let mut cfg = MachineConfig::default_single_core();
    cfg.defense = DefenseScheme::Fence;
    cfg.pinned_loads = PinnedLoadsConfig::with_mode(PinMode::Early);
    cfg
}

/// A server running on an ephemeral port with its own scratch cache
/// directory; dropped state is cleaned up by the test that owns it.
struct TestServer {
    addr: String,
    cache_dir: PathBuf,
    scratch: PathBuf,
    handle: JoinHandle<std::io::Result<()>>,
}

fn start_server(test_name: &str, checkpoint_period: u64) -> TestServer {
    start_bounded_server(test_name, checkpoint_period, None)
}

fn start_bounded_server(
    test_name: &str,
    checkpoint_period: u64,
    cache_max_entries: Option<usize>,
) -> TestServer {
    let scratch = std::env::temp_dir().join(format!(
        "plsim-serve-test-{}-{test_name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();
    let cache_dir = scratch.join("cache");
    let port_file = scratch.join("port.txt");
    let opts = ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        cache_dir: cache_dir.clone(),
        cache_max_entries,
        cache_max_bytes: None,
        checkpoint_period,
        port_file: Some(port_file.clone()),
    };
    let handle = std::thread::spawn(move || serve::serve(&opts));
    let addr = loop {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            break s.trim().to_string();
        }
        assert!(!handle.is_finished(), "server died before binding");
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    TestServer {
        addr,
        cache_dir,
        scratch,
        handle,
    }
}

impl TestServer {
    fn cache_files(&self) -> Vec<String> {
        let mut names: Vec<String> = match std::fs::read_dir(&self.cache_dir) {
            Ok(entries) => entries
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .collect(),
            Err(_) => Vec::new(),
        };
        names.sort();
        names
    }

    fn shutdown(self) {
        let resp = serve::request(&self.addr, "{\"cmd\":\"shutdown\"}").unwrap();
        assert!(resp.contains("\"ok\":true"), "{resp}");
        self.handle.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&self.scratch);
    }
}

fn assert_cache_file_count(dir: &Path, expected: usize) {
    let cache = serve::ResultCache::new(dir).unwrap();
    assert_eq!(cache.len(), expected);
}

#[test]
fn repeat_jobs_hit_the_cache_byte_identically() {
    let server = start_server("repeat", serve::DEFAULT_CHECKPOINT_PERIOD);
    let line = serve::run_request_json(&test_config(), None, &test_workload(), None, None);

    let first = serve::request(&server.addr, &line).unwrap();
    assert!(!serve::response_was_cached(&first), "{first}");
    let second = serve::request(&server.addr, &line).unwrap();
    assert!(serve::response_was_cached(&second), "{second}");

    // Byte identity of the result payload, not merely semantic equality:
    // the cache hit splices the stored file's raw bytes back in.
    let r1 = serve::extract_result(&first).unwrap();
    let r2 = serve::extract_result(&second).unwrap();
    assert_eq!(r1, r2, "cache hit altered the result bytes");

    // Exactly one content-addressed entry landed on disk.
    let files = server.cache_files();
    assert_eq!(files.len(), 1, "{files:?}");
    assert!(files[0].starts_with("plcache-"), "{files:?}");
    assert_cache_file_count(&server.cache_dir, 1);

    // The stats command agrees: one miss, one hit.
    let stats = serve::request(&server.addr, "{\"cmd\":\"stats\"}").unwrap();
    assert!(stats.contains("\"hits\":\"1\""), "{stats}");
    assert!(stats.contains("\"misses\":\"1\""), "{stats}");
    server.shutdown();
}

/// Satellite: a result that carries an event trace must NEVER be served
/// from or stored in the cache — the wire format drops the trace, so a
/// cached trace-job reply would silently lose data on the repeat.
#[test]
fn traced_jobs_are_never_cached() {
    let server = start_server("traced", serve::DEFAULT_CHECKPOINT_PERIOD);
    let mut cfg = test_config();
    cfg.trace = TraceConfig::enabled();
    let line = serve::run_request_json(&cfg, None, &test_workload(), None, None);

    for _ in 0..2 {
        let resp = serve::request(&server.addr, &line).unwrap();
        assert!(
            !serve::response_was_cached(&resp),
            "traced job served from cache: {resp}"
        );
        serve::extract_result(&resp).unwrap();
        assert_eq!(server.cache_files(), Vec::<String>::new());
    }
    let stats = serve::request(&server.addr, "{\"cmd\":\"stats\"}").unwrap();
    assert!(stats.contains("\"cache_entries\":0"), "{stats}");
    server.shutdown();
}

/// Satellite: a server started with a cache bound evicts the
/// least-recently-used entry when a new result lands, reports the count
/// in `stats`, and serves an evicted job as a cold (but byte-identical)
/// re-run.
#[test]
fn bounded_server_cache_evicts_lru_and_reports_it() {
    let server = start_bounded_server("evict", serve::DEFAULT_CHECKPOINT_PERIOD, Some(1));
    let w = test_workload();
    let cfg1 = test_config();
    let mut cfg2 = test_config();
    cfg2.seed ^= 0x5eed;
    let line1 = serve::run_request_json(&cfg1, None, &w, None, None);
    let line2 = serve::run_request_json(&cfg2, None, &w, None, None);

    let first = serve::request(&server.addr, &line1).unwrap();
    assert!(!serve::response_was_cached(&first), "{first}");
    // A second distinct job pushes the one-entry cache over its bound;
    // the first job's entry is the LRU victim.
    let second = serve::request(&server.addr, &line2).unwrap();
    assert!(!serve::response_was_cached(&second), "{second}");
    let stats = serve::request(&server.addr, "{\"cmd\":\"stats\"}").unwrap();
    assert!(stats.contains("\"cache_entries\":1"), "{stats}");
    assert!(stats.contains("\"cache_evictions\":\"1\""), "{stats}");
    assert_eq!(server.cache_files().len(), 1);

    // The survivor still hits...
    let survivor = serve::request(&server.addr, &line2).unwrap();
    assert!(serve::response_was_cached(&survivor), "{survivor}");
    // ...while the evicted job re-runs cold, byte-identical to its first
    // run (determinism, not the cache, guarantees the bytes).
    let again = serve::request(&server.addr, &line1).unwrap();
    assert!(!serve::response_was_cached(&again), "{again}");
    assert_eq!(
        serve::extract_result(&first).unwrap(),
        serve::extract_result(&again).unwrap()
    );
    let stats = serve::request(&server.addr, "{\"cmd\":\"stats\"}").unwrap();
    assert!(stats.contains("\"cache_evictions\":\"2\""), "{stats}");
    server.shutdown();
}

/// Satellite: `plsim submit` must exit nonzero and surface the server's
/// error message on a job-level error — not print the raw JSON error
/// blob on stdout with exit 0.
#[test]
fn submit_exits_nonzero_on_job_level_error() {
    use std::io::{BufRead, BufReader, Write};
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let fake = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let mut line = String::new();
        BufReader::new(stream.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        assert!(line.contains("\"cmd\":\"run\""), "{line}");
        stream
            .write_all(b"{\"error\":\"workload `stream`: boom\",\"ok\":false}\n")
            .unwrap();
    });
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_plsim"))
        .args(["submit", "--server", &addr, "--workload", "stream"])
        .output()
        .unwrap();
    fake.join().unwrap();
    assert!(
        !out.status.success(),
        "submit exited 0 on a job-level error"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("boom"), "stderr: {stderr}");
    assert!(
        out.stdout.is_empty(),
        "error blob leaked to stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

/// A worker killed after two checkpoints re-enqueues the job; whichever
/// worker picks it up restores the last checkpoint instead of starting
/// over, and the finished result is byte-identical to a direct,
/// uninterrupted in-process run of the same job.
#[test]
fn killed_worker_resumes_from_checkpoint_with_identical_result() {
    let cfg = test_config();
    let w = test_workload();

    // Ground truth: the same job run directly, no server involved.
    let mut m = Machine::new(&cfg).unwrap();
    w.install(&mut m);
    let direct = m.run(2_000_000_000).unwrap();
    let direct_json = serve::result_to_json(&direct);
    // Checkpoint every ~1/5th of the run so kill_after_checkpoints=2
    // strikes mid-run, not after completion.
    let period = (direct.cycles / 5).max(1);

    let server = start_server("kill", serve::DEFAULT_CHECKPOINT_PERIOD);
    let line = serve::run_request_json(&cfg, None, &w, Some(2), Some(period));
    let resp = serve::request(&server.addr, &line).unwrap();
    assert!(!serve::response_was_cached(&resp), "{resp}");
    assert!(
        resp.contains("\"resumed\":\"1\""),
        "job did not resume from a checkpoint: {resp}"
    );
    let result = serve::extract_result(&resp).unwrap();
    assert_eq!(
        result, direct_json,
        "kill/resume diverged from the direct run"
    );

    // The checkpoints the worker took were also spilled to disk (the
    // server-restart safety net), and the finished job cleaned its spill
    // file up again.
    let stats = serve::request(&server.addr, "{\"cmd\":\"stats\"}").unwrap();
    assert!(
        !stats.contains("\"ckpt_spills\":\"0\""),
        "no checkpoint ever spilled to disk: {stats}"
    );
    assert!(stats.contains("\"ckpt_entries\":0"), "{stats}");

    // The resumed job's (untraced) result is cached like any other, so a
    // repeat — this time unkilled — hits the cache with the same bytes.
    let repeat_line = serve::run_request_json(&cfg, None, &w, None, Some(period));
    let repeat = serve::request(&server.addr, &repeat_line).unwrap();
    assert!(serve::response_was_cached(&repeat), "{repeat}");
    assert_eq!(serve::extract_result(&repeat).unwrap(), direct_json);
    server.shutdown();
}

/// A *server* restart must not lose mid-run progress either: checkpoints
/// spill to `plckpt-*.bin` files beside the result cache, and a fresh
/// server asked for the same job resumes from the spill instead of
/// starting over — with the exact bytes an uninterrupted run produces.
#[test]
fn server_restart_resumes_from_disk_spill() {
    let cfg = test_config();
    let w = test_workload();

    // Ground truth: the same job run directly, no server involved.
    let mut m = Machine::new(&cfg).unwrap();
    w.install(&mut m);
    let direct = m.run(2_000_000_000).unwrap();
    let direct_json = serve::result_to_json(&direct);
    let period = (direct.cycles / 5).max(1);

    let server = start_server("restart", serve::DEFAULT_CHECKPOINT_PERIOD);

    // Simulate the first server dying after its second checkpoint: leave
    // behind exactly the spill file its worker would have written, via
    // the same public store and state encoding the server itself uses.
    // (The in-memory copy died with the process; the new server above
    // has never seen this job.)
    let digest = serve::job_digest(&cfg, None, &w);
    let store = serve::CheckpointStore::new(&server.cache_dir).unwrap();
    let mut killed = Machine::new(&cfg).unwrap();
    w.install(&mut killed);
    match killed.run_until(2_000_000_000, 2 * period).unwrap() {
        StepOutcome::Paused => {}
        StepOutcome::Done(_) => panic!("job finished before its second checkpoint"),
    }
    let mid_cycle = killed.now().raw();
    store
        .store(digest, mid_cycle, 0, &killed.encode_state())
        .unwrap();
    drop(killed);
    assert_eq!(store.len(), 1);

    // The restarted server resumes from the spill: the reply says so,
    // the result is byte-identical to the uninterrupted run, and the
    // spill file is cleaned up once the job completes.
    let line = serve::run_request_json(&cfg, None, &w, None, Some(period));
    let resp = serve::request(&server.addr, &line).unwrap();
    assert!(!serve::response_was_cached(&resp), "{resp}");
    assert!(
        resp.contains("\"resumed\":\"1\""),
        "restarted server did not resume from the disk spill: {resp}"
    );
    assert_eq!(
        serve::extract_result(&resp).unwrap(),
        direct_json,
        "resume from disk diverged from the direct run"
    );
    assert_eq!(store.len(), 0, "completed job left its spill file behind");

    // A corrupt spill must read as missing: the job restarts from cycle
    // zero (resumed 0) and still produces the right bytes. Use a fresh
    // digest (different checkpoint period changes nothing; same digest)
    // — so first evict the cached result to force a re-run.
    std::fs::remove_file(
        serve::ResultCache::new(&server.cache_dir)
            .unwrap()
            .path_for(digest),
    )
    .unwrap();
    std::fs::write(store.path_for(digest), b"not a checkpoint").unwrap();
    let resp = serve::request(&server.addr, &line).unwrap();
    assert!(!serve::response_was_cached(&resp), "{resp}");
    assert!(
        resp.contains("\"resumed\":\"0\""),
        "corrupt spill should restart the job from scratch: {resp}"
    );
    assert_eq!(serve::extract_result(&resp).unwrap(), direct_json);
    server.shutdown();
}
