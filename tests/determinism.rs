//! Bit-exact determinism: the same configuration and workload must
//! produce identical cycle counts, statistics, and results on every run.
//! The figure harnesses and the paper-comparison in `EXPERIMENTS.md`
//! depend on this.

use pinned_loads::base::{DefenseScheme, MachineConfig, PinMode, PinnedLoadsConfig};
use pinned_loads::machine::{Machine, RunResult};
use pinned_loads::workloads::{parallel_suite, spec_suite, Scale, Workload};

fn run_once(cfg: &MachineConfig, w: &Workload) -> RunResult {
    let mut m = Machine::new(cfg).unwrap();
    w.install(&mut m);
    m.run(500_000_000).unwrap()
}

fn assert_identical(cfg: &MachineConfig, w: &Workload) {
    let a = run_once(cfg, w);
    let b = run_once(cfg, w);
    assert_eq!(
        a.cycles,
        b.cycles,
        "`{}` cycles differ under {}",
        w.name,
        cfg.label()
    );
    assert_eq!(
        a.retired_per_core, b.retired_per_core,
        "`{}` retirement differs",
        w.name
    );
    let a_stats: Vec<(String, u64)> = a.stats.iter().map(|(k, v)| (k.to_string(), v)).collect();
    let b_stats: Vec<(String, u64)> = b.stats.iter().map(|(k, v)| (k.to_string(), v)).collect();
    assert_eq!(
        a_stats,
        b_stats,
        "`{}` statistics differ under {}",
        w.name,
        cfg.label()
    );
}

#[test]
fn single_core_runs_are_bit_identical() {
    let kernels = spec_suite(Scale::Test);
    let mut cfg = MachineConfig::default_single_core();
    cfg.defense = DefenseScheme::Fence;
    cfg.pinned_loads = PinnedLoadsConfig::with_mode(PinMode::Early);
    for w in kernels.iter().take(4) {
        assert_identical(&cfg, w);
    }
}

#[test]
fn multicore_runs_are_bit_identical() {
    let kernels = parallel_suite(4, Scale::Test);
    for (scheme, mode) in [
        (DefenseScheme::Unsafe, PinMode::Off),
        (DefenseScheme::Dom, PinMode::Late),
        (DefenseScheme::Stt, PinMode::Early),
    ] {
        let mut cfg = MachineConfig::default_multi_core(4);
        cfg.defense = scheme;
        cfg.pinned_loads = PinnedLoadsConfig::with_mode(mode);
        // The two most nondeterminism-prone kernels: contended atomics
        // and false sharing.
        for w in kernels
            .iter()
            .filter(|w| ["lock_counter", "false_sharing"].contains(&w.name.as_str()))
        {
            assert_identical(&cfg, w);
        }
    }
}

#[test]
fn workload_generation_is_deterministic() {
    let a = spec_suite(Scale::Bench);
    let b = spec_suite(Scale::Bench);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.programs, y.programs);
        assert_eq!(x.init_mem, y.init_mem);
    }
}
