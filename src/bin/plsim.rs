//! `plsim` — run any bundled kernel on any configuration from the
//! command line, or talk to a long-running simulation server.
//!
//! ```sh
//! plsim --list
//! plsim --workload stream --scheme fence --pin ep
//! plsim --workload migratory --cores 8 --scheme dom --pin lp --scale bench --stats
//! plsim --asm kernel.s --scheme stt --pin ep --stats
//!
//! # simulation-as-a-service: repeats are served from the result cache
//! plsim serve --addr 127.0.0.1:7171 --cache-dir /tmp/plcache &
//! plsim submit --server 127.0.0.1:7171 --workload stream --scheme fence --pin ep
//! plsim shutdown --server 127.0.0.1:7171
//! ```

use pinned_loads::base::{DefenseScheme, MachineConfig, PinMode, PinnedLoadsConfig, ThreatModel};
use pinned_loads::bench::serve;
use pinned_loads::machine::Machine;
use pinned_loads::workloads::{parallel_suite, spec_suite, Scale, Workload};

#[derive(Debug)]
struct Args {
    workload: Option<String>,
    asm_file: Option<String>,
    scheme: DefenseScheme,
    pin: PinMode,
    threat: ThreatModel,
    cores: usize,
    scale: Scale,
    conservative_tso: bool,
    show_stats: bool,
    list: bool,
    // Server-related options.
    server: Option<String>,
    addr: String,
    threads: Option<usize>,
    cache_dir: String,
    cache_max_entries: Option<usize>,
    cache_max_bytes: Option<u64>,
    port_file: Option<String>,
    checkpoint_period: Option<u64>,
    kill_after_checkpoints: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: plsim [submit|serve|shutdown] [options]\n\
         \n\
         run locally (default command):\n\
           --list                     list available kernels and exit\n\
           --workload NAME            run a bundled kernel\n\
           --asm FILE                 assemble and run FILE instead of a bundled kernel\n\
           --scheme unsafe|fence|dom|stt|invisible (default unsafe)\n\
           --pin off|lp|ep                 (default off)\n\
           --threat comp|spectre           (default comp)\n\
           --cores N                       (default 1; >=2 selects the parallel suite)\n\
           --scale test|bench|full         (default bench)\n\
           --conservative-tso              squash even the oldest load\n\
           --stats                         dump all statistics counters\n\
         \n\
         serve — run the job server (content-addressed result cache):\n\
           --addr HOST:PORT                bind address (default 127.0.0.1:0)\n\
           --threads N                     simulation workers (default: sweep threads)\n\
           --cache-dir DIR                 result cache directory (default plcache)\n\
           --cache-max-entries N           evict LRU entries past N cached results\n\
           --cache-max-bytes N             evict LRU entries past N total cached bytes\n\
           --port-file FILE                write the bound address here once listening\n\
           --checkpoint-period N           cycles between job checkpoints\n\
         \n\
         submit — run a job on a server (same workload/config flags as local):\n\
           --server HOST:PORT              server address (or PL_SWEEP_SERVER)\n\
           --kill-after-checkpoints N      fault injection: kill the worker after N\n\
                                           checkpoints; the job resumes from the last one\n\
           --checkpoint-period N           cycles between checkpoints for this job\n\
         prints the result JSON on stdout; cached/digest metadata goes to stderr\n\
         \n\
         shutdown — stop a server:\n\
           --server HOST:PORT              server address (or PL_SWEEP_SERVER)"
    );
    std::process::exit(2);
}

fn parse(argv: &[String]) -> Args {
    let mut args = Args {
        workload: None,
        asm_file: None,
        scheme: DefenseScheme::Unsafe,
        pin: PinMode::Off,
        threat: ThreatModel::Comprehensive,
        cores: 1,
        scale: Scale::Bench,
        conservative_tso: false,
        show_stats: false,
        list: false,
        server: std::env::var("PL_SWEEP_SERVER")
            .ok()
            .filter(|s| !s.is_empty()),
        addr: "127.0.0.1:0".to_string(),
        threads: None,
        cache_dir: "plcache".to_string(),
        cache_max_entries: None,
        cache_max_bytes: None,
        port_file: None,
        checkpoint_period: None,
        kill_after_checkpoints: None,
    };
    let mut i = 0;
    let value = |argv: &[String], i: usize| -> String {
        argv.get(i + 1).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--list" => args.list = true,
            "--stats" => args.show_stats = true,
            "--conservative-tso" => args.conservative_tso = true,
            "--workload" => {
                args.workload = Some(value(argv, i));
                i += 1;
            }
            "--asm" => {
                args.asm_file = Some(value(argv, i));
                i += 1;
            }
            "--scheme" => {
                args.scheme = match value(argv, i).as_str() {
                    "unsafe" => DefenseScheme::Unsafe,
                    "fence" => DefenseScheme::Fence,
                    "dom" => DefenseScheme::Dom,
                    "stt" => DefenseScheme::Stt,
                    "invisible" => DefenseScheme::Invisible,
                    _ => usage(),
                };
                i += 1;
            }
            "--pin" => {
                args.pin = match value(argv, i).as_str() {
                    "off" => PinMode::Off,
                    "lp" => PinMode::Late,
                    "ep" => PinMode::Early,
                    _ => usage(),
                };
                i += 1;
            }
            "--threat" => {
                args.threat = match value(argv, i).as_str() {
                    "comp" => ThreatModel::Comprehensive,
                    "spectre" => ThreatModel::Spectre,
                    _ => usage(),
                };
                i += 1;
            }
            "--cores" => {
                args.cores = value(argv, i).parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--scale" => {
                args.scale = match value(argv, i).as_str() {
                    "test" => Scale::Test,
                    "bench" => Scale::Bench,
                    "full" => Scale::Full,
                    _ => usage(),
                };
                i += 1;
            }
            "--server" => {
                args.server = Some(value(argv, i));
                i += 1;
            }
            "--addr" => {
                args.addr = value(argv, i);
                i += 1;
            }
            "--threads" => {
                args.threads = Some(value(argv, i).parse().unwrap_or_else(|_| usage()));
                i += 1;
            }
            "--cache-dir" => {
                args.cache_dir = value(argv, i);
                i += 1;
            }
            "--cache-max-entries" => {
                args.cache_max_entries = Some(value(argv, i).parse().unwrap_or_else(|_| usage()));
                i += 1;
            }
            "--cache-max-bytes" => {
                args.cache_max_bytes = Some(value(argv, i).parse().unwrap_or_else(|_| usage()));
                i += 1;
            }
            "--port-file" => {
                args.port_file = Some(value(argv, i));
                i += 1;
            }
            "--checkpoint-period" => {
                args.checkpoint_period = Some(value(argv, i).parse().unwrap_or_else(|_| usage()));
                i += 1;
            }
            "--kill-after-checkpoints" => {
                args.kill_after_checkpoints =
                    Some(value(argv, i).parse().unwrap_or_else(|_| usage()));
                i += 1;
            }
            _ => usage(),
        }
        i += 1;
    }
    args
}

/// Which workload-source flags the user combined, validated up front.
///
/// `--asm` and `--workload` name two different program sources; silently
/// preferring one would run something other than what the user asked
/// for, so combining them is a usage error that names both flags.
fn workload_flag_conflict(workload: &Option<String>, asm_file: &Option<String>) -> Option<String> {
    match (workload, asm_file) {
        (Some(w), Some(a)) => Some(format!(
            "--workload {w} and --asm {a} both name a program source; pass exactly one"
        )),
        _ => None,
    }
}

/// Finds `name` in the suite selected by `cores`, or explains precisely
/// why it isn't there. The old behavior silently switched suites on
/// `--cores >= 2` and then reported the spec kernel as unknown; now the
/// error names both the kernel and the `--cores` flag that deselected
/// its suite.
fn resolve_workload(name: &str, cores: usize, scale: Scale) -> Result<Workload, String> {
    let (selected, other_has_it, selected_label, other_label, fix) = if cores >= 2 {
        (
            parallel_suite(cores, scale),
            spec_suite(Scale::Test).iter().any(|w| w.name == name),
            "parallel (SPLASH2/PARSEC-like)",
            "single-core (SPEC17-like)",
            "drop --cores (or use --cores 1)",
        )
    } else {
        (
            spec_suite(scale),
            parallel_suite(2, Scale::Test)
                .iter()
                .any(|w| w.name == name),
            "single-core (SPEC17-like)",
            "parallel (SPLASH2/PARSEC-like)",
            "pass --cores 2 or more",
        )
    };
    if let Some(w) = selected.into_iter().find(|w| w.name == name) {
        return Ok(w);
    }
    if other_has_it {
        Err(format!(
            "--workload {name} names a kernel in the {other_label} suite, but --cores \
             selected the {selected_label} suite; {fix}"
        ))
    } else {
        Err(format!(
            "unknown workload `{name}`; try --list (note: --cores selects the suite)"
        ))
    }
}

fn build_config(args: &Args) -> MachineConfig {
    let mut cfg = if args.cores >= 2 {
        MachineConfig::default_multi_core(args.cores)
    } else {
        MachineConfig::default_single_core()
    };
    cfg.defense = args.scheme;
    cfg.threat_model = args.threat;
    cfg.pinned_loads = PinnedLoadsConfig::with_mode(args.pin);
    cfg.core.conservative_tso = args.conservative_tso;
    if let Err(e) = cfg.validate() {
        eprintln!("invalid configuration: {e}");
        std::process::exit(2);
    }
    cfg
}

fn build_workload(args: &Args) -> (String, Workload) {
    if let Some(conflict) = workload_flag_conflict(&args.workload, &args.asm_file) {
        eprintln!("{conflict}");
        std::process::exit(2);
    }
    if let Some(path) = &args.asm_file {
        let source = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read `{path}`: {e}");
            std::process::exit(2);
        });
        let program = pinned_loads::isa::parse_asm(&source).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        });
        let w = Workload {
            name: path.clone(),
            programs: vec![program; args.cores.max(1)],
            init_mem: Vec::new(),
            init_regs: vec![Vec::new(); args.cores.max(1)],
        };
        (path.clone(), w)
    } else {
        let Some(name) = &args.workload else { usage() };
        match resolve_workload(name, args.cores, args.scale) {
            Ok(w) => (name.clone(), w),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
}

fn server_addr(args: &Args) -> String {
    args.server.clone().unwrap_or_else(|| {
        eprintln!("no server address: pass --server HOST:PORT or set PL_SWEEP_SERVER");
        std::process::exit(2);
    })
}

fn cmd_serve(args: &Args) {
    let opts = serve::ServeOptions {
        addr: args.addr.clone(),
        threads: args
            .threads
            .unwrap_or_else(pinned_loads::bench::sweep::default_threads),
        cache_dir: args.cache_dir.clone().into(),
        cache_max_entries: args.cache_max_entries,
        cache_max_bytes: args.cache_max_bytes,
        checkpoint_period: args
            .checkpoint_period
            .unwrap_or(serve::DEFAULT_CHECKPOINT_PERIOD),
        port_file: args.port_file.clone().map(Into::into),
    };
    if let Err(e) = serve::serve(&opts) {
        eprintln!("serve failed: {e}");
        std::process::exit(1);
    }
}

fn cmd_submit(args: &Args) {
    let addr = server_addr(args);
    let (name, workload) = build_workload(args);
    let cfg = build_config(args);
    let line = serve::run_request_json(
        &cfg,
        None,
        &workload,
        args.kill_after_checkpoints,
        args.checkpoint_period,
    );
    let resp = serve::request(&addr, &line).unwrap_or_else(|e| {
        eprintln!("cannot reach server {addr}: {e}");
        std::process::exit(1);
    });
    match serve::extract_result(&resp) {
        Ok(result) => {
            // Result JSON alone on stdout — byte-identical for a cache
            // hit and the run that populated it — metadata on stderr.
            println!("{result}");
            let v = pinned_loads::trace::json::parse(&resp).expect("validated by extract_result");
            let digest = v.get("digest").and_then(|d| d.as_str()).unwrap_or("?");
            let resumed = v.get("resumed").and_then(|r| r.as_str()).unwrap_or("0");
            eprintln!(
                "workload={name} digest={digest} cached={} resumed={resumed}",
                serve::response_was_cached(&resp),
            );
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

fn cmd_shutdown(args: &Args) {
    let addr = server_addr(args);
    match serve::request(&addr, "{\"cmd\":\"shutdown\"}") {
        Ok(resp) => eprintln!("server {addr}: {resp}"),
        Err(e) => {
            eprintln!("cannot reach server {addr}: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_local(args: &Args) {
    if args.list {
        println!("single-core (SPEC17-like) kernels:");
        for w in spec_suite(Scale::Test) {
            println!("  {}", w.name);
        }
        println!("parallel (SPLASH2/PARSEC-like) kernels (use --cores >= 2):");
        for w in parallel_suite(2, Scale::Test) {
            println!("  {}", w.name);
        }
        return;
    }
    let (name, workload) = build_workload(args);
    let cfg = build_config(args);
    let mut machine = Machine::new(&cfg).expect("validated configuration");
    workload.install(&mut machine);
    match machine.run(5_000_000_000) {
        Ok(res) => {
            println!("workload   {name}");
            println!("config     {}", cfg.label());
            println!("cycles     {}", res.cycles);
            println!("retired    {}", res.total_retired());
            println!("CPI        {:.4}", res.cpi());
            if args.show_stats {
                println!("---- statistics ----");
                print!("{}", res.stats);
            }
        }
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => cmd_serve(&parse(&argv[1..])),
        Some("submit") => cmd_submit(&parse(&argv[1..])),
        Some("shutdown") => cmd_shutdown(&parse(&argv[1..])),
        _ => cmd_local(&parse(&argv)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asm_plus_workload_is_a_named_conflict() {
        let msg =
            workload_flag_conflict(&Some("stream".to_string()), &Some("kernel.s".to_string()))
                .expect("conflict detected");
        assert!(msg.contains("--workload"), "{msg}");
        assert!(msg.contains("--asm"), "{msg}");
        assert!(workload_flag_conflict(&Some("stream".to_string()), &None).is_none());
        assert!(workload_flag_conflict(&None, &Some("kernel.s".to_string())).is_none());
        assert!(workload_flag_conflict(&None, &None).is_none());
    }

    #[test]
    fn spec_kernel_with_multicore_names_the_cores_flag() {
        // The old code silently switched to the parallel suite and
        // called the spec kernel "unknown".
        let spec_name = &spec_suite(Scale::Test)[0].name.clone();
        let err = resolve_workload(spec_name, 8, Scale::Test).unwrap_err();
        assert!(err.contains(spec_name.as_str()), "{err}");
        assert!(err.contains("--cores"), "{err}");
        assert!(err.contains("SPEC17"), "{err}");
    }

    #[test]
    fn parallel_kernel_without_cores_names_the_cores_flag() {
        let par_name = &parallel_suite(2, Scale::Test)[0].name.clone();
        let err = resolve_workload(par_name, 1, Scale::Test).unwrap_err();
        assert!(err.contains(par_name.as_str()), "{err}");
        assert!(err.contains("--cores 2"), "{err}");
    }

    #[test]
    fn known_kernels_resolve_in_their_suite() {
        let spec_name = &spec_suite(Scale::Test)[0].name.clone();
        assert_eq!(
            resolve_workload(spec_name, 1, Scale::Test).unwrap().name,
            *spec_name
        );
        let par_name = &parallel_suite(4, Scale::Test)[0].name.clone();
        let w = resolve_workload(par_name, 4, Scale::Test).unwrap();
        assert_eq!(w.name, *par_name);
        assert!(w.cores() >= 2);
    }

    #[test]
    fn truly_unknown_kernel_suggests_list() {
        let err = resolve_workload("no_such_kernel", 1, Scale::Test).unwrap_err();
        assert!(err.contains("--list"), "{err}");
    }
}
