//! `plsim` — run any bundled kernel on any configuration from the
//! command line.
//!
//! ```sh
//! plsim --list
//! plsim --workload stream --scheme fence --pin ep
//! plsim --workload migratory --cores 8 --scheme dom --pin lp --scale bench --stats
//! plsim --asm kernel.s --scheme stt --pin ep --stats
//! ```

use pinned_loads::base::{DefenseScheme, MachineConfig, PinMode, PinnedLoadsConfig, ThreatModel};
use pinned_loads::machine::Machine;
use pinned_loads::workloads::{parallel_suite, spec_suite, Scale, Workload};

#[derive(Debug)]
struct Args {
    workload: Option<String>,
    asm_file: Option<String>,
    scheme: DefenseScheme,
    pin: PinMode,
    threat: ThreatModel,
    cores: usize,
    scale: Scale,
    conservative_tso: bool,
    show_stats: bool,
    list: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: plsim --workload NAME [options]\n\
         \n\
         options:\n\
           --list                     list available kernels and exit\n\
           --asm FILE                 assemble and run FILE instead of a bundled kernel\n\
           --scheme unsafe|fence|dom|stt|invisible (default unsafe)\n\
           --pin off|lp|ep                 (default off)\n\
           --threat comp|spectre           (default comp)\n\
           --cores N                       (default 1; >=2 selects the parallel suite)\n\
           --scale test|bench|full         (default bench)\n\
           --conservative-tso              squash even the oldest load\n\
           --stats                         dump all statistics counters"
    );
    std::process::exit(2);
}

fn parse() -> Args {
    let mut args = Args {
        workload: None,
        asm_file: None,
        scheme: DefenseScheme::Unsafe,
        pin: PinMode::Off,
        threat: ThreatModel::Comprehensive,
        cores: 1,
        scale: Scale::Bench,
        conservative_tso: false,
        show_stats: false,
        list: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: usize| -> String {
        argv.get(i + 1).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--list" => args.list = true,
            "--stats" => args.show_stats = true,
            "--conservative-tso" => args.conservative_tso = true,
            "--workload" => {
                args.workload = Some(value(&argv, i));
                i += 1;
            }
            "--asm" => {
                args.asm_file = Some(value(&argv, i));
                i += 1;
            }
            "--scheme" => {
                args.scheme = match value(&argv, i).as_str() {
                    "unsafe" => DefenseScheme::Unsafe,
                    "fence" => DefenseScheme::Fence,
                    "dom" => DefenseScheme::Dom,
                    "stt" => DefenseScheme::Stt,
                    "invisible" => DefenseScheme::Invisible,
                    _ => usage(),
                };
                i += 1;
            }
            "--pin" => {
                args.pin = match value(&argv, i).as_str() {
                    "off" => PinMode::Off,
                    "lp" => PinMode::Late,
                    "ep" => PinMode::Early,
                    _ => usage(),
                };
                i += 1;
            }
            "--threat" => {
                args.threat = match value(&argv, i).as_str() {
                    "comp" => ThreatModel::Comprehensive,
                    "spectre" => ThreatModel::Spectre,
                    _ => usage(),
                };
                i += 1;
            }
            "--cores" => {
                args.cores = value(&argv, i).parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--scale" => {
                args.scale = match value(&argv, i).as_str() {
                    "test" => Scale::Test,
                    "bench" => Scale::Bench,
                    "full" => Scale::Full,
                    _ => usage(),
                };
                i += 1;
            }
            _ => usage(),
        }
        i += 1;
    }
    args
}

fn suites(cores: usize, scale: Scale) -> Vec<Workload> {
    if cores >= 2 {
        parallel_suite(cores, scale)
    } else {
        spec_suite(scale)
    }
}

fn main() {
    let args = parse();
    if args.list {
        println!("single-core (SPEC17-like) kernels:");
        for w in spec_suite(Scale::Test) {
            println!("  {}", w.name);
        }
        println!("parallel (SPLASH2/PARSEC-like) kernels (use --cores >= 2):");
        for w in parallel_suite(2, Scale::Test) {
            println!("  {}", w.name);
        }
        return;
    }
    let (name, workload) = if let Some(path) = &args.asm_file {
        let source = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read `{path}`: {e}");
            std::process::exit(2);
        });
        let program = pinned_loads::isa::parse_asm(&source).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        });
        let w = Workload {
            name: path.clone(),
            programs: vec![program; args.cores.max(1)],
            init_mem: Vec::new(),
            init_regs: vec![Vec::new(); args.cores.max(1)],
        };
        (path.clone(), w)
    } else {
        let Some(name) = args.workload else { usage() };
        let suite = suites(args.cores, args.scale);
        let Some(workload) = suite.into_iter().find(|w| w.name == name) else {
            eprintln!("unknown workload `{name}`; try --list (note: --cores selects the suite)");
            std::process::exit(2);
        };
        (name, workload)
    };

    let mut cfg = if args.cores >= 2 {
        MachineConfig::default_multi_core(args.cores)
    } else {
        MachineConfig::default_single_core()
    };
    cfg.defense = args.scheme;
    cfg.threat_model = args.threat;
    cfg.pinned_loads = PinnedLoadsConfig::with_mode(args.pin);
    cfg.core.conservative_tso = args.conservative_tso;
    if let Err(e) = cfg.validate() {
        eprintln!("invalid configuration: {e}");
        std::process::exit(2);
    }

    let mut machine = Machine::new(&cfg).expect("validated configuration");
    workload.install(&mut machine);
    match machine.run(5_000_000_000) {
        Ok(res) => {
            println!("workload   {name}");
            println!("config     {}", cfg.label());
            println!("cycles     {}", res.cycles);
            println!("retired    {}", res.total_retired());
            println!("CPI        {:.4}", res.cpi());
            if args.show_stats {
                println!("---- statistics ----");
                print!("{}", res.stats);
            }
        }
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    }
}
