//! **pinned-loads** — a reproduction of *"Pinned Loads: Taming Speculative
//! Loads in Secure Processors"* (Zhao, Ji, Morrison, Marinov, Torrellas;
//! ASPLOS 2022).
//!
//! This crate is a facade over the workspace: a cycle-level multicore
//! out-of-order simulator with TSO memory ordering and directory-based
//! MESI coherence, three hardware defense schemes against speculative
//! execution attacks (Fence, Delay-On-Miss, STT), and the paper's Pinned
//! Loads technique in both its Late Pinning and Early Pinning designs.
//!
//! # Architecture
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`base`] | `pl-base` | addresses, cycles, configuration (Table 1), stats, RNG |
//! | [`trace`] | `pl-trace` | cycle-level event tracing, Chrome-trace / pipeview exporters |
//! | [`isa`] | `pl-isa` | the RISC-style ISA and program builder |
//! | [`predictor`] | `pl-predictor` | TAGE + loop predictor, BTB, RAS |
//! | [`mem`] | `pl-mem` | caches, MSHRs, write buffer, NoC, directory MESI with the Defer/Abort + GetX*/Inv*/Clear extensions |
//! | [`secure`] | `pl-secure` | VP masks, defense policies, taint tracking, CST, CPT, pin governor |
//! | [`cpu`] | `pl-cpu` | the out-of-order pipeline |
//! | [`machine`] | `pl-machine` | the assembled multicore machine |
//! | [`workloads`] | `pl-workloads` | SPEC17-like and SPLASH2/PARSEC-like kernels |
//! | [`bench`] | `pl-bench` | sweep fan-out, baseline cache, and the `plsim serve` job server with its content-addressed result cache |
//!
//! # Quickstart
//!
//! ```
//! use pinned_loads::base::{DefenseScheme, MachineConfig, PinMode, PinnedLoadsConfig};
//! use pinned_loads::machine::Machine;
//! use pinned_loads::workloads::{spec_suite, Scale};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A Fence-defended core accelerated with Early Pinning.
//! let mut cfg = MachineConfig::default_single_core();
//! cfg.defense = DefenseScheme::Fence;
//! cfg.pinned_loads = PinnedLoadsConfig::with_mode(PinMode::Early);
//!
//! let workload = &spec_suite(Scale::Test)[0]; // "stream"
//! let mut machine = Machine::new(&cfg)?;
//! workload.install(&mut machine);
//! let result = machine.run(100_000_000)?;
//! println!("CPI = {:.3}", result.cpi());
//! # Ok(())
//! # }
//! ```
//!
//! See `DESIGN.md` for the system inventory, `docs/INTERNALS.md` for a mechanism walkthrough, `EXPERIMENTS.md` for the
//! paper-versus-measured comparison, and `crates/bench/src/bin/` for the
//! harnesses that regenerate every figure and table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pl_base as base;
pub use pl_bench as bench;
pub use pl_cpu as cpu;
pub use pl_isa as isa;
pub use pl_machine as machine;
pub use pl_mem as mem;
pub use pl_predictor as predictor;
pub use pl_secure as secure;
pub use pl_trace as trace;
pub use pl_workloads as workloads;
