#!/usr/bin/env bash
# Tier-1 gate: everything must pass before merging.
#
# Hermetic by construction — the workspace has no external registry
# dependencies, so this works offline. See README.md "Hermetic builds".
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
# Perf lints are advisory (warn, not deny): surface regressions in the
# simulator kernel's hot loops without blocking unrelated changes.
cargo clippy --workspace --all-targets -- -W clippy::perf
cargo fmt --check
# Kernel-throughput smoke: one spec and one par job end to end, plus the
# regression guard — fails if any par job drops >20% below the committed
# pre-event-driven baseline (a noise-immune floor: the event-driven
# machine must never be slower than the old tick-everything loop).
cargo run --release -q -p pl-bench --bin kernel_bench -- --smoke \
  --baseline results/BENCH_kernel_baseline.json --out /dev/null
# Runtime invariant checker + differential oracle + fault injection.
cargo run --release -q -p pl-verify -- --smoke
# Invariant-heavy sweeps once more at release speed with debug
# assertions live (the `checked` profile), so internal debug_assert!s
# in the pipeline/protocol run against the full scheme matrix.
cargo test -q --profile checked --test protocol_invariants --test verify_checker
echo "tier-1: OK"
