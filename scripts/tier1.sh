#!/usr/bin/env bash
# Tier-1 gate: everything must pass before merging.
#
# Hermetic by construction — the workspace has no external registry
# dependencies, so this works offline. See README.md "Hermetic builds".
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
# Perf lints are advisory (warn, not deny): surface regressions in the
# simulator kernel's hot loops without blocking unrelated changes.
cargo clippy --workspace --all-targets -- -W clippy::perf
cargo fmt --check
# Kernel-throughput smoke: one spec and one par job end to end, plus the
# regression guard — fails if any par job drops >20% below the committed
# pre-event-driven baseline (a noise-immune floor: the event-driven
# machine must never be slower than the old tick-everything loop).
cargo run --release -q -p pl-bench --bin kernel_bench -- --smoke \
  --baseline results/BENCH_kernel_baseline.json --out /dev/null
# Runtime invariant checker + differential oracle + fault injection.
cargo run --release -q -p pl-verify -- --smoke
# Attack-suite smoke: every gadget x scheme point of the leakage sweep
# runs end to end and writes a parseable leakage report.
cargo run --release -q -p pl-attack -- --smoke --out /dev/null
# Serve smoke: boot the job server on an ephemeral port, submit the same
# job twice, and require the repeat to be a cache hit whose result JSON
# is byte-identical to the run that populated the cache.
SERVE_DIR=$(mktemp -d)
trap 'rm -rf "$SERVE_DIR"; [ -n "${SERVE_PID:-}" ] && kill "$SERVE_PID" 2>/dev/null || true' EXIT
./target/release/plsim serve --addr 127.0.0.1:0 \
  --port-file "$SERVE_DIR/port.txt" --cache-dir "$SERVE_DIR/cache" --threads 2 &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -s "$SERVE_DIR/port.txt" ] && break; sleep 0.1; done
SERVE_ADDR=$(cat "$SERVE_DIR/port.txt")
./target/release/plsim submit --server "$SERVE_ADDR" --workload stream \
  --scheme fence --pin ep --scale test >"$SERVE_DIR/run1.json" 2>"$SERVE_DIR/meta1.txt"
./target/release/plsim submit --server "$SERVE_ADDR" --workload stream \
  --scheme fence --pin ep --scale test >"$SERVE_DIR/run2.json" 2>"$SERVE_DIR/meta2.txt"
grep -q 'cached=false' "$SERVE_DIR/meta1.txt"
grep -q 'cached=true' "$SERVE_DIR/meta2.txt"
cmp "$SERVE_DIR/run1.json" "$SERVE_DIR/run2.json"
./target/release/plsim shutdown --server "$SERVE_ADDR" 2>/dev/null
wait "$SERVE_PID"
unset SERVE_PID
# Invariant-heavy sweeps once more at release speed with debug
# assertions live (the `checked` profile), so internal debug_assert!s
# in the pipeline/protocol run against the full scheme matrix. The
# ff_equivalence spin_parking filter re-proves the spin-parking twins
# bit-identical with every debug_assert! in the park/replay path armed.
cargo test -q --profile checked --test protocol_invariants --test verify_checker
cargo test -q --profile checked --test ff_equivalence spin_parking
# The attack suite under debug assertions: non-vacuity, mitigation
# direction, and sweep determinism with the transient-shadow and
# observer paths' debug_assert!s armed.
cargo test -q --profile checked -p pl-attack --test leakage
echo "tier-1: OK"
