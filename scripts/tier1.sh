#!/usr/bin/env bash
# Tier-1 gate: everything must pass before merging.
#
# Hermetic by construction — the workspace has no external registry
# dependencies, so this works offline. See README.md "Hermetic builds".
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
echo "tier-1: OK"
